package jit

import (
	"context"
	"fmt"
	"runtime"

	"vida/internal/algebra"
	"vida/internal/mcl"
	"vida/internal/monoid"
	"vida/internal/sched"
	"vida/internal/sdg"
	"vida/internal/trace"
	"vida/internal/values"
	"vida/internal/vec"
)

var (
	listM = monoid.List
	bagM  = monoid.Bag
	setM  = monoid.Set
)

// SchemaCatalog extends the executor catalog with the source descriptions
// the JIT compiler needs to flatten scans into typed slots.
type SchemaCatalog interface {
	algebra.Catalog
	Description(name string) (*sdg.Description, bool)
}

// SlotSource is implemented by access paths that can emit slot rows
// directly (no record construction): slot order follows the fields
// argument. It is the row-based fallback contract for plugins that do not
// implement BatchSource.
type SlotSource interface {
	IterateSlots(fields []string, yield func([]values.Value) error) error
}

// BatchSource is implemented by access paths that emit column-vector
// batches directly — typed (unboxed) columns where the schema allows.
// This is the preferred scan contract: the CSV plugin fills whole column
// vectors per positional-map jump, and columnar cache entries serve their
// slices zero-copy. Batches are reused between yields.
type BatchSource interface {
	IterateBatches(fields []string, batchSize int, yield func(*vec.Batch) error) error
}

// RangeBatchSource is implemented by access paths that can serve an
// arbitrary row range of the source — the contract morsel-driven parallel
// scans build on. OpenRange resolves fields and snapshots auxiliary
// structures once; ok is false when the source cannot serve ranges right
// now (e.g. the positional map is not built yet). The returned scan
// function must be safe for concurrent calls over disjoint ranges.
type RangeBatchSource interface {
	OpenRange(fields []string) (scan func(lo, hi, batchSize int, yield func(*vec.Batch) error) error, n int, ok bool)
}

// batchSink receives pipeline batches. Batches are REUSED by the
// producer: a sink that retains data must copy it. A sink may refine
// b.Sel but must not mutate column storage.
type batchSink func(b *vec.Batch) error

// batchFilter refines b.Sel to the rows satisfying a predicate. A filter
// value carries per-run scratch (its selection buffer) and must not be
// shared between concurrent runs; factories (mkFilter) produce one per
// run or per morsel worker.
type batchFilter func(b *vec.Batch) error

// compiledPlan is one operator subtree staged into a closure pipeline.
type compiledPlan struct {
	frame *frame
	run   func(sink batchSink) error
	// openRange, when non-nil, attempts to open a partitioned runner over
	// the subtree: scan may be invoked concurrently over disjoint
	// [lo,hi) row ranges (each invocation allocates its own scratch).
	// It is set only for chains of per-row-independent operators over a
	// RangeBatchSource — the morsel scheduler's contract.
	openRange func() (scan func(lo, hi int, sink batchSink) error, n int, ok bool)
}

// Options tunes the generated pipelines.
type Options struct {
	// BatchSize is the row capacity of pipeline batches (default
	// vec.DefaultBatchSize).
	BatchSize int
	// Workers bounds the morsel-parallel scan workers (default
	// runtime.GOMAXPROCS(0); 1 disables parallelism).
	Workers int
	// ParallelThreshold is the minimum partitionable row count before a
	// scan goes parallel (default DefaultParallelThreshold). Small scans
	// are not worth the goroutine fan-out.
	ParallelThreshold int
	// Pool is the morsel scheduler executing parallel scans (default
	// sched.Default(), the process-wide shared pool). A query server
	// injects its own pool so every query draws from the same workers.
	Pool *sched.Pool
	// Ctx cancels execution: parallel scans stop dispatching morsels
	// when it is done (default context.Background()). Serial pipelines
	// observe cancellation through the catalog's context-checking
	// sources, not through this field.
	Ctx context.Context
	// NoExprKernels disables the vectorized arithmetic/projection
	// kernels (filters keep their PR-1 comparison shapes; computed
	// heads, keys and bind columns fall back to row-wise evaluation).
	// It exists for A/B benchmarking against the pre-kernel engine and
	// for fallback-equivalence tests; production code leaves it false.
	NoExprKernels bool
	// MemReserve, when non-nil, charges estimated bytes against the
	// query's memory budget at the sites that accumulate unbounded state
	// (retained join build sides, boxed collection results, dedup
	// tables). A non-nil error aborts the query with the caller's
	// budget error. Must be safe for concurrent calls.
	MemReserve func(delta int64) error
	// Trace, when non-nil, is the parent span for the operator spans the
	// generated pipeline records (fold, join build/probe, parallel
	// merge) and carries the kernel-staging attributes. Nil (disarmed)
	// costs a pointer test per operator.
	Trace *trace.Span
	// KernelStats, when non-nil, receives the compile-time tally of
	// pipeline stages staged as vectorized kernels vs. row-wise boxed
	// fallbacks — the engine feeds its always-on fallback counters with
	// it regardless of tracing.
	KernelStats func(vectorized, boxed int64)
	// GroupStats, when non-nil, receives the grouped-fold outcome after
	// each hash aggregation completes: distinct groups built, resident
	// group-table bytes, and how many morsel partials merged (0 for a
	// serial fold). The engine feeds its always-on aggregation counters
	// with it regardless of tracing.
	GroupStats func(groups, tableBytes, partialMerges int64)
	// JoinPartitions is the radix partition count of the hash-join build
	// (default DefaultJoinPartitions; rounded up to a power of two,
	// capped at maxJoinPartitions). One partition degenerates to a
	// single shared chain table.
	JoinPartitions int
	// JoinBuildThreshold is the minimum build-side row count before a
	// join build scans morsel-parallel (default ParallelThreshold):
	// small build sides are not worth the fan-out.
	JoinBuildThreshold int
	// JoinStats, when non-nil, receives delta-style join-fold tallies:
	// one call per sealed build (folds=1 with buildRows entries and
	// tableBytes resident) and one per completed probe pipeline
	// (probeRows matches emitted, possibly concurrent across probe
	// morsels). The engine feeds its always-on join counters with it
	// regardless of tracing. Must be safe for concurrent calls.
	JoinStats func(folds, buildRows, probeRows, tableBytes int64)
}

// DefaultParallelThreshold is the default minimum row count for
// morsel-parallel scans.
const DefaultParallelThreshold = 8192

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = vec.DefaultBatchSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ParallelThreshold <= 0 {
		o.ParallelThreshold = DefaultParallelThreshold
	}
	if o.Pool == nil {
		o.Pool = sched.Default()
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	if o.JoinPartitions <= 0 {
		o.JoinPartitions = DefaultJoinPartitions
	}
	if o.JoinPartitions > maxJoinPartitions {
		o.JoinPartitions = maxJoinPartitions
	}
	// Round up to a power of two: the radix split is hash >> shift.
	p := 1
	for p < o.JoinPartitions {
		p *= 2
	}
	o.JoinPartitions = p
	if o.JoinBuildThreshold <= 0 {
		o.JoinBuildThreshold = o.ParallelThreshold
	}
	return o
}

// compiler holds per-query compilation state.
type compiler struct {
	cat     algebra.Catalog
	schemas SchemaCatalog // may be nil
	baseEnv *mcl.Env
	opts    Options
	// vecStages/boxedStages tally each staging decision (filter, bind,
	// reduce head): vectorized kernel vs. row-wise boxed fallback.
	vecStages   int64
	boxedStages int64
}

// reportKernels publishes the staging tally to the options hooks once
// compilation succeeded.
func (c *compiler) reportKernels(prog func() (values.Value, error), err error) (func() (values.Value, error), error) {
	if err != nil {
		return nil, err
	}
	if c.opts.KernelStats != nil {
		c.opts.KernelStats(c.vecStages, c.boxedStages)
	}
	if sp := c.opts.Trace; sp != nil {
		sp.SetAttr("kernels_vectorized", c.vecStages)
		sp.SetAttr("kernels_boxed", c.boxedStages)
		sp.SetAttr("boxed_fallback", c.boxedStages > 0)
	}
	return prog, nil
}

// Executor is the just-in-time engine. The zero value is ready to use
// (default batch size and worker count).
type Executor struct {
	Opts Options
}

// Run implements algebra.Executor: it generates the specialized pipeline
// for this exact plan ("database as a query") and runs it.
func (e Executor) Run(p *algebra.Reduce, cat algebra.Catalog) (values.Value, error) {
	prog, err := CompileWith(p, cat, e.Opts)
	if err != nil {
		return values.Null, err
	}
	return prog()
}

// RunCtx is Run with a cancellation context: the morsel scheduler stops
// dispatching this query's morsels once ctx is done.
func (e Executor) RunCtx(ctx context.Context, p *algebra.Reduce, cat algebra.Catalog) (values.Value, error) {
	opts := e.Opts
	opts.Ctx = ctx
	prog, err := CompileWith(p, cat, opts)
	if err != nil {
		return values.Null, err
	}
	return prog()
}

// Compile stages the plan into an executable program with default options.
func Compile(p *algebra.Reduce, cat algebra.Catalog) (func() (values.Value, error), error) {
	return CompileWith(p, cat, Options{})
}

// CompileWith stages the plan into an executable program. Compilation is
// the reproduction's analogue of the paper's per-query code generation:
// all schema resolution, slot layout, plugin selection and operator
// fusion happen here, once, leaving a closure chain with no per-row
// decisions. The staged pipeline moves data batch-at-a-time (column
// vectors with typed fast paths) and, when the access path supports row
// ranges, executes the scan morsel-parallel with per-worker partial
// aggregates merged in morsel order at the root reduce.
func CompileWith(p *algebra.Reduce, cat algebra.Catalog, opts Options) (func() (values.Value, error), error) {
	opts = opts.withDefaults()
	c := &compiler{cat: cat, opts: opts}
	if sc, ok := cat.(SchemaCatalog); ok {
		c.schemas = sc
	}
	env, err := c.materializeFreeSources(p)
	if err != nil {
		return nil, err
	}
	c.baseEnv = env

	input, err := c.compilePlan(p.Input)
	if err != nil {
		return nil, err
	}
	// Grouped reduces interpose the hash-aggregation stage: the input
	// subtree folds into the group table once (single scan), and the
	// root consumers below run over group rows with the grouping clause
	// stripped — Pred is HAVING, Order/Limit rank groups.
	if p.Grouped() {
		input, err = c.compileGroupAgg(p, input)
		if err != nil {
			return nil, err
		}
		p = shadowGrouped(p)
	}
	// Ordered and bounded roots replace the monoid collector: sort keys
	// turn the fold into a keyed top-k, a bare LIMIT/OFFSET routes
	// through the streaming quota (early producer cancellation) and
	// collects the surviving rows.
	if p.Order.Ordered() {
		return c.reportKernels(c.compileOrdered(p, input))
	}
	if p.Order != nil {
		return c.reportKernels(c.compileBareBound(p, input))
	}
	mkCons, err := c.compileReduceConsumer(p, input)
	if err != nil {
		return nil, err
	}
	m := p.M
	return c.reportKernels(func() (values.Value, error) {
		if opts.Workers > 1 && input.openRange != nil {
			if scan, n, ok := input.openRange(); ok && n >= opts.ParallelThreshold {
				sp := opts.Trace.Child("fold")
				sp.SetAttr("kind", "reduce")
				sp.SetAttr("parallel", true)
				popts := opts
				popts.Trace = sp
				v, err := runParallelReduce(popts.Ctx, scan, n, mkCons, m, popts)
				sp.End()
				return v, err
			}
		}
		// The fold span wraps the whole serial pipeline run (the scan
		// feeds the consumer in one closure chain), so its wall time is
		// inclusive of scan time — phase rollups subtract scan spans.
		sp := opts.Trace.Child("fold")
		sp.SetAttr("kind", "reduce")
		defer sp.End()
		acc := monoid.NewCollector(m)
		rc := mkCons()
		rc.reset(acc)
		if err := input.run(rc.consume); err != nil {
			return values.Null, err
		}
		rc.finish()
		return acc.Result(), nil
	}, nil)
}

// materializeFreeSources loads catalog sources referenced from inside
// expressions (correlated subqueries) into the base environment, as the
// reference executor does.
func (c *compiler) materializeFreeSources(p algebra.Plan) (*mcl.Env, error) {
	bound := map[string]bool{}
	for _, v := range algebra.BoundVars(p) {
		bound[v] = true
	}
	needed := map[string]bool{}
	collect := func(e mcl.Expr) {
		if e == nil {
			return
		}
		for _, v := range mcl.FreeVars(e) {
			if !bound[v] {
				if _, ok := c.cat.Source(v); ok {
					needed[v] = true
				}
			}
		}
	}
	var walk func(algebra.Plan)
	walk = func(p algebra.Plan) {
		switch n := p.(type) {
		case *algebra.Scan:
			collect(n.Filter)
		case *algebra.Generate:
			collect(n.E)
		case *algebra.Select:
			collect(n.Pred)
		case *algebra.Join:
			for _, on := range n.On {
				collect(on.LExpr)
				collect(on.RExpr)
			}
			collect(n.Residual)
		case *algebra.Bind:
			collect(n.E)
		case *algebra.Reduce:
			collect(n.Head)
			collect(n.Pred)
			for _, k := range n.GroupBy {
				collect(k.E)
			}
			for _, a := range n.Aggs {
				collect(a.E)
			}
			if n.Order != nil {
				for _, k := range n.Order.Keys {
					collect(k.E)
				}
			}
		}
		for _, in := range p.Inputs() {
			walk(in)
		}
	}
	walk(p)
	bindings := map[string]values.Value{}
	for name := range needed {
		v, err := algebra.Materialize(c.cat, name)
		if err != nil {
			return nil, err
		}
		bindings[name] = v
	}
	return mcl.NewEnv(bindings), nil
}

// compileFilter stages a predicate as a batch filter factory: vectorized
// kernels for the comparison shapes the compiler recognizes, a row-wise
// boxed fallback otherwise. Each factory call returns a filter with its
// own scratch, safe for one (serial) run or one morsel worker.
func (c *compiler) compileFilter(e mcl.Expr, f *frame) (func() batchFilter, error) {
	if vf := compileVecFilter(e, f, !c.opts.NoExprKernels); vf != nil {
		c.vecStages++
		return vf, nil
	}
	c.boxedStages++
	pred, err := c.compileExpr(e, f)
	if err != nil {
		return nil, err
	}
	width := f.width()
	return func() batchFilter {
		row := make([]values.Value, width)
		// Non-nil even when empty: a nil Sel means "all rows live".
		sel := make([]int, 0, 64)
		return func(b *vec.Batch) error {
			sel = sel[:0]
			n := b.Len()
			for k := 0; k < n; k++ {
				i := b.Index(k)
				fillRow(b, i, row)
				pv, err := pred(row)
				if err != nil {
					return err
				}
				if pv.Kind() == values.KindBool && pv.Bool() {
					sel = append(sel, i)
				}
			}
			b.Sel = sel
			return nil
		}
	}, nil
}

// fillRow boxes physical row i of b into row, one entry per slot.
func fillRow(b *vec.Batch, i int, row []values.Value) {
	for s := range b.Cols {
		row[s] = b.Cols[s].Value(i)
	}
}

func (c *compiler) compilePlan(p algebra.Plan) (*compiledPlan, error) {
	if p == nil {
		// Unit input: one empty row.
		f := newFrame()
		return &compiledPlan{frame: f, run: func(sink batchSink) error {
			return sink(&vec.Batch{N: 1})
		}}, nil
	}
	switch n := p.(type) {
	case *algebra.Scan:
		return c.compileScan(n)
	case *algebra.Select:
		return c.compileSelect(n)
	case *algebra.Bind:
		return c.compileBind(n)
	case *algebra.Generate:
		return c.compileGenerate(n)
	case *algebra.Product:
		return c.compileProduct(n)
	case *algebra.Join:
		return c.compileJoin(n)
	case *algebra.Reduce:
		return nil, fmt.Errorf("jit: nested Reduce plans are not supported")
	}
	return nil, fmt.Errorf("jit: unknown plan node %T", p)
}

// compileScan selects the input plugin for the source format and stages a
// specialized scan loop. Sources that can emit column batches
// (BatchSource) feed the pipeline with typed vectors; slot sources are
// packed into boxed batches; generic sources are exploded into slots when
// the schema is known, or bound as whole values otherwise.
func (c *compiler) compileScan(n *algebra.Scan) (*compiledPlan, error) {
	src, ok := c.cat.Source(n.Source)
	if !ok {
		return nil, fmt.Errorf("jit: unknown source %q", n.Source)
	}

	// Determine the attribute list: explicit plan fields, else the full
	// schema when known, else whole-value binding.
	fields := n.Fields
	var rowType *sdg.Type
	if c.schemas != nil {
		if desc, ok := c.schemas.Description(n.Source); ok {
			rowType = desc.IterationType()
		}
	}
	if len(fields) == 0 && rowType != nil && rowType.Kind == sdg.TRecord {
		fields = rowType.AttrNames()
	}
	bs := c.opts.BatchSize

	if len(fields) == 0 {
		// Open schema: one whole-value slot per datum (JSON objects).
		f := newFrame()
		f.add(n.Var, "")
		var mkFilter func() batchFilter
		if n.Filter != nil {
			var err error
			mkFilter, err = c.compileFilter(n.Filter, f)
			if err != nil {
				return nil, err
			}
		}
		return &compiledPlan{frame: f, run: func(sink batchSink) error {
			var flt batchFilter
			if mkFilter != nil {
				flt = mkFilter()
			}
			p := vec.NewPacker(1, bs, flt, sink)
			row := make([]values.Value, 1)
			if err := src.Iterate(nil, func(v values.Value) error {
				row[0] = v
				return p.Add(row)
			}); err != nil {
				return err
			}
			return p.Flush()
		}}, nil
	}

	// Flattened scan: one slot per attribute.
	f := newFrame()
	for _, fld := range fields {
		f.add(n.Var, fld)
	}
	var mkFilter func() batchFilter
	if n.Filter != nil {
		var err error
		mkFilter, err = c.compileFilter(n.Filter, f)
		if err != nil {
			return nil, err
		}
	}
	cp := &compiledPlan{frame: f}
	filterOf := func() batchFilter {
		if mkFilter == nil {
			return nil
		}
		return mkFilter()
	}
	if bsrc, ok := src.(BatchSource); ok {
		// Specialized plugin: the access path fills column vectors.
		cp.run = func(sink batchSink) error {
			flt := filterOf()
			return bsrc.IterateBatches(fields, bs, func(b *vec.Batch) error {
				if flt != nil {
					if err := flt(b); err != nil {
						return err
					}
					if b.Len() == 0 {
						return nil
					}
				}
				return sink(b)
			})
		}
		if rsrc, ok := src.(RangeBatchSource); ok {
			cp.openRange = func() (func(lo, hi int, sink batchSink) error, int, bool) {
				scan, total, ok := rsrc.OpenRange(fields)
				if !ok {
					return nil, 0, false
				}
				return func(lo, hi int, sink batchSink) error {
					flt := filterOf()
					return scan(lo, hi, bs, func(b *vec.Batch) error {
						if flt != nil {
							if err := flt(b); err != nil {
								return err
							}
							if b.Len() == 0 {
								return nil
							}
						}
						return sink(b)
					})
				}, total, true
			}
		}
		return cp, nil
	}
	if ss, ok := src.(SlotSource); ok {
		// Slot plugin (row-based fallback): pack slot rows into batches.
		cp.run = func(sink batchSink) error {
			p := vec.NewPacker(len(fields), bs, filterOf(), sink)
			if err := ss.IterateSlots(fields, p.Add); err != nil {
				return err
			}
			return p.Flush()
		}
		return cp, nil
	}
	// Generic record source.
	cp.run = func(sink batchSink) error {
		p := vec.NewPacker(len(fields), bs, filterOf(), sink)
		row := make([]values.Value, len(fields))
		if err := src.Iterate(fields, func(v values.Value) error {
			for i, fld := range fields {
				fv, _ := v.Get(fld)
				row[i] = fv
			}
			return p.Add(row)
		}); err != nil {
			return err
		}
		return p.Flush()
	}
	return cp, nil
}

// compileSelect fuses a filter into the batch stream: no operator
// boundary, just a selection-vector refinement between producer and sink.
func (c *compiler) compileSelect(n *algebra.Select) (*compiledPlan, error) {
	in, err := c.compilePlan(n.Input)
	if err != nil {
		return nil, err
	}
	mkFilter, err := c.compileFilter(n.Pred, in.frame)
	if err != nil {
		return nil, err
	}
	cp := &compiledPlan{frame: in.frame}
	cp.run = func(sink batchSink) error {
		flt := mkFilter()
		return in.run(func(b *vec.Batch) error {
			if err := flt(b); err != nil {
				return err
			}
			if b.Len() == 0 {
				return nil
			}
			return sink(b)
		})
	}
	if in.openRange != nil {
		cp.openRange = func() (func(lo, hi int, sink batchSink) error, int, bool) {
			scan, total, ok := in.openRange()
			if !ok {
				return nil, 0, false
			}
			return func(lo, hi int, sink batchSink) error {
				flt := mkFilter()
				return scan(lo, hi, func(b *vec.Batch) error {
					if err := flt(b); err != nil {
						return err
					}
					if b.Len() == 0 {
						return nil
					}
					return sink(b)
				})
			}, total, true
		}
	}
	return cp, nil
}

// compileBind extends each batch with one computed column. Column storage
// of the input batch is shared (headers copied, payloads untouched); only
// the extension column is materialized, at the rows' physical indices.
func (c *compiler) compileBind(n *algebra.Bind) (*compiledPlan, error) {
	in, err := c.compilePlan(n.Input)
	if err != nil {
		return nil, err
	}
	f := in.frame.clone()
	f.add(n.Var, "")
	var mkKernel func() vecExpr
	if !c.opts.NoExprKernels {
		mkKernel = compileVecExpr(n.E, in.frame)
	}
	var e compiledExpr
	if mkKernel == nil {
		c.boxedStages++
		e, err = c.compileExpr(n.E, in.frame)
		if err != nil {
			return nil, err
		}
	} else {
		c.vecStages++
	}
	inWidth := in.frame.width()
	mkExtend := func() func(b *vec.Batch, emit batchSink) error {
		var out vec.Batch
		if mkKernel != nil {
			// Projection kernel: the extension column is computed typed
			// per batch (int64/float64 payloads when the inputs are), so
			// downstream filters and aggregates over the bound variable
			// stay on the unboxed fast paths. The kernel owns the column
			// storage, so the extended batch is never zero-copy-stable.
			k := mkKernel()
			return func(b *vec.Batch, emit batchSink) error {
				col, err := k(b)
				if err != nil {
					return err
				}
				out.Cols = append(out.Cols[:0], b.Cols...)
				out.Cols = append(out.Cols, *col)
				out.N = b.N
				out.Sel = b.Sel
				return emit(&out)
			}
		}
		row := make([]values.Value, inWidth)
		var ext []values.Value
		return func(b *vec.Batch, emit batchSink) error {
			if cap(ext) < b.N {
				ext = make([]values.Value, b.N)
			}
			ext = ext[:b.N]
			n := b.Len()
			for k := 0; k < n; k++ {
				i := b.Index(k)
				fillRow(b, i, row)
				v, err := e(row)
				if err != nil {
					return err
				}
				ext[i] = v
			}
			out.Cols = append(out.Cols[:0], b.Cols...)
			out.Cols = append(out.Cols, vec.Col{Tag: vec.Boxed, Boxed: ext})
			out.N = b.N
			out.Sel = b.Sel
			return emit(&out)
		}
	}
	cp := &compiledPlan{frame: f}
	cp.run = func(sink batchSink) error {
		extend := mkExtend()
		return in.run(func(b *vec.Batch) error { return extend(b, sink) })
	}
	if in.openRange != nil {
		cp.openRange = func() (func(lo, hi int, sink batchSink) error, int, bool) {
			scan, total, ok := in.openRange()
			if !ok {
				return nil, 0, false
			}
			return func(lo, hi int, sink batchSink) error {
				extend := mkExtend()
				return scan(lo, hi, func(b *vec.Batch) error { return extend(b, sink) })
			}, total, true
		}
	}
	return cp, nil
}

// compileGenerate explodes a collection-valued expression: each input row
// repeats once per element, with the element bound in the new slot. The
// output is repacked into boxed batches (explosion changes cardinality).
func (c *compiler) compileGenerate(n *algebra.Generate) (*compiledPlan, error) {
	in, err := c.compilePlan(n.Input)
	if err != nil {
		return nil, err
	}
	f := in.frame.clone()
	f.add(n.Var, "")
	e, err := c.compileExpr(n.E, in.frame)
	if err != nil {
		return nil, err
	}
	inWidth := in.frame.width()
	outWidth := f.width()
	bs := c.opts.BatchSize
	mkExplode := func(sink batchSink) (func(b *vec.Batch) error, *vec.Packer) {
		p := vec.NewPacker(outWidth, bs, nil, sink)
		buf := make([]values.Value, outWidth)
		row := buf[:inWidth]
		return func(b *vec.Batch) error {
			n := b.Len()
			for k := 0; k < n; k++ {
				i := b.Index(k)
				fillRow(b, i, row)
				coll, err := e(row)
				if err != nil {
					return err
				}
				if coll.IsNull() {
					continue
				}
				if !coll.IsCollection() && coll.Kind() != values.KindArray {
					return fmt.Errorf("jit: generate over %s", coll.Kind())
				}
				for _, el := range coll.Elems() {
					buf[inWidth] = el
					if err := p.Add(buf); err != nil {
						return err
					}
				}
			}
			return nil
		}, p
	}
	cp := &compiledPlan{frame: f}
	cp.run = func(sink batchSink) error {
		explode, p := mkExplode(sink)
		if err := in.run(explode); err != nil {
			return err
		}
		return p.Flush()
	}
	if in.openRange != nil {
		cp.openRange = func() (func(lo, hi int, sink batchSink) error, int, bool) {
			scan, total, ok := in.openRange()
			if !ok {
				return nil, 0, false
			}
			return func(lo, hi int, sink batchSink) error {
				explode, p := mkExplode(sink)
				if err := scan(lo, hi, explode); err != nil {
					return err
				}
				return p.Flush()
			}, total, true
		}
	}
	return cp, nil
}

// copyRows materializes the live rows of a batch stream as boxed slices
// (build sides of products and joins — the operator's "output plugin").
func copyRows(run func(sink batchSink) error, width int) ([][]values.Value, error) {
	var rows [][]values.Value
	row := make([]values.Value, width)
	err := run(func(b *vec.Batch) error {
		n := b.Len()
		for k := 0; k < n; k++ {
			fillRow(b, b.Index(k), row)
			rows = append(rows, append([]values.Value{}, row...))
		}
		return nil
	})
	return rows, err
}

func (c *compiler) compileProduct(n *algebra.Product) (*compiledPlan, error) {
	l, err := c.compilePlan(n.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compilePlan(n.R)
	if err != nil {
		return nil, err
	}
	f := l.frame.clone()
	for _, s := range r.frame.slots {
		f.add(s.key.varName, s.key.attr)
	}
	lw, rw := l.frame.width(), r.frame.width()
	bs := c.opts.BatchSize
	return &compiledPlan{frame: f, run: func(sink batchSink) error {
		// Materialize the right side once (it restarts per left row).
		right, err := copyRows(r.run, rw)
		if err != nil {
			return err
		}
		p := vec.NewPacker(lw+rw, bs, nil, sink)
		buf := make([]values.Value, lw+rw)
		if err := l.run(func(b *vec.Batch) error {
			n := b.Len()
			for k := 0; k < n; k++ {
				fillRow(b, b.Index(k), buf[:lw])
				for _, rrow := range right {
					copy(buf[lw:], rrow)
					if err := p.Add(buf); err != nil {
						return err
					}
				}
			}
			return nil
		}); err != nil {
			return err
		}
		return p.Flush()
	}}, nil
}

// buildCompactFactor is the selection-density threshold below which a
// transient build-side batch is compacted before retention: when the
// filter kept at most 1/buildCompactFactor of the batch's physical rows,
// copying just the survivors beats retaining the whole batch. Stable
// (cache-owned) batches are never compacted — their retention is a
// zero-copy header and compaction would allocate.
const buildCompactFactor = 4

// retainForBuild retains one build-side batch, compacting sparse
// transient batches so a heavily filtered build side holds its survivors
// only, not every physical row. compacted reports that the result is
// re-indexed (physical row k = k-th live row of b).
func retainForBuild(b *vec.Batch) (stored vec.Batch, compacted bool) {
	if !b.Stable && b.Sel != nil && b.Len()*buildCompactFactor <= b.N {
		return b.Compact(), true
	}
	return b.Retain(), false
}

// compileJoin stages a partitioned hash join: the right side is the
// build side (its materialization is the operator's "output plugin"
// state), the left side probes. Null keys never match. The staged
// machinery lives in join.go — a radix-partitioned build (morsel-
// parallel over partitionable build sides) sealed into an immutable
// shared index, probed serially by run and morsel-parallel through
// openRange when the probe side is partitionable.
func (c *compiler) compileJoin(n *algebra.Join) (*compiledPlan, error) {
	l, err := c.compilePlan(n.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compilePlan(n.R)
	if err != nil {
		return nil, err
	}
	f := l.frame.clone()
	for _, s := range r.frame.slots {
		f.add(s.key.varName, s.key.attr)
	}
	lKeys := make([]compiledExpr, len(n.On))
	rKeys := make([]compiledExpr, len(n.On))
	for i, on := range n.On {
		if lKeys[i], err = c.compileExpr(on.LExpr, l.frame); err != nil {
			return nil, err
		}
		if rKeys[i], err = c.compileExpr(on.RExpr, r.frame); err != nil {
			return nil, err
		}
	}
	var residual compiledExpr
	if n.Residual != nil {
		if residual, err = c.compileExpr(n.Residual, f); err != nil {
			return nil, err
		}
	}
	// Slot-reference keys — the overwhelmingly common case — read their
	// column directly, skipping row materialization. This is the kind of
	// decision the generated code specializes away.
	lSlot, rSlot := -1, -1
	if len(n.On) == 1 {
		lSlot = slotOf(n.On[0].LExpr, l.frame)
		rSlot = slotOf(n.On[0].RExpr, r.frame)
	}
	parts := c.opts.JoinPartitions
	shift := uint(64)
	for p := parts; p > 1; p /= 2 {
		shift--
	}
	js := &joinState{
		l: l, r: r,
		lSlot: lSlot, rSlot: rSlot,
		lKeys: lKeys, rKeys: rKeys,
		residual: residual,
		lw:       l.frame.width(),
		rw:       r.frame.width(),
		opts:     c.opts,
		parts:    parts,
		shift:    shift,
	}
	return js.plan(f), nil
}
