package jit

import (
	"strings"

	"vida/internal/algebra"
	"vida/internal/mcl"
	"vida/internal/monoid"
	"vida/internal/values"
	"vida/internal/vec"
)

// This file holds the vectorized execution kernels: predicate filters
// that refine a batch's selection vector over typed column payloads, and
// the reduce consumer that folds batches into a monoid collector with
// unboxed fast paths for the common aggregate monoids. Kernels dispatch
// on the column Tag per batch (once per ~1024 rows), so the same staged
// pipeline serves typed CSV vectors, zero-copy cache slices and boxed
// fallback batches.

// slotOf resolves an expression to a frame slot index when it is a pure
// slot reference (whole-value variable or flattened attribute), -1
// otherwise.
func slotOf(e mcl.Expr, f *frame) int {
	switch n := e.(type) {
	case *mcl.VarExpr:
		if i, ok := f.lookup(n.Name, ""); ok {
			return i
		}
	case *mcl.ProjExpr:
		if v, ok := n.Rec.(*mcl.VarExpr); ok {
			if i, ok := f.lookup(v.Name, n.Attr); ok {
				return i
			}
		}
	}
	return -1
}

// constOf resolves an expression to a compile-time constant value.
func constOf(e mcl.Expr) (values.Value, bool) {
	switch n := e.(type) {
	case *mcl.ConstExpr:
		return n.Val, true
	case *mcl.NullExpr:
		return values.Null, true
	}
	return values.Null, false
}

// cmpMask maps a comparison operator to the accepted Compare outcomes.
func cmpMask(op mcl.BinOp) (lt, eq, gt bool) {
	switch op {
	case mcl.OpEq:
		return false, true, false
	case mcl.OpNeq:
		return true, false, true
	case mcl.OpLt:
		return true, false, false
	case mcl.OpLe:
		return true, true, false
	case mcl.OpGt:
		return false, false, true
	case mcl.OpGe:
		return false, true, true
	}
	return false, false, false
}

// flipOp mirrors a comparison so `const op col` becomes `col op' const`.
func flipOp(op mcl.BinOp) mcl.BinOp {
	switch op {
	case mcl.OpLt:
		return mcl.OpGt
	case mcl.OpLe:
		return mcl.OpGe
	case mcl.OpGt:
		return mcl.OpLt
	case mcl.OpGe:
		return mcl.OpLe
	}
	return op
}

func isCmpOp(op mcl.BinOp) bool {
	switch op {
	case mcl.OpEq, mcl.OpNeq, mcl.OpLt, mcl.OpLe, mcl.OpGt, mcl.OpGe:
		return true
	}
	return false
}

// compileVecFilter stages a predicate as a vectorized selection kernel
// when its shape allows (comparisons whose sides are slots, constants
// or — when kernels is true — arithmetic kernels over them, plus
// conjunctions thereof); nil means the caller must use the row-wise
// fallback. Comparison semantics match mcl.ApplyBinOp exactly: null
// operands compare false, int/float compare numerically.
func compileVecFilter(e mcl.Expr, f *frame, kernels bool) func() batchFilter {
	n, ok := e.(*mcl.BinExpr)
	if !ok {
		return nil
	}
	if n.Op == mcl.OpAnd {
		l := compileVecFilter(n.L, f, kernels)
		r := compileVecFilter(n.R, f, kernels)
		if l == nil || r == nil {
			return nil
		}
		return func() batchFilter {
			lf, rf := l(), r()
			return func(b *vec.Batch) error {
				if err := lf(b); err != nil {
					return err
				}
				if b.Len() == 0 {
					return nil
				}
				return rf(b)
			}
		}
	}
	if !isCmpOp(n.Op) {
		return nil
	}
	li, ri := slotOf(n.L, f), slotOf(n.R, f)
	if li >= 0 && ri >= 0 {
		return colColFilter(li, ri, n.Op)
	}
	if li >= 0 {
		if cv, ok := constOf(n.R); ok {
			return colConstFilter(li, n.Op, cv)
		}
	}
	if ri >= 0 {
		if cv, ok := constOf(n.L); ok {
			return colConstFilter(ri, flipOp(n.Op), cv)
		}
	}
	if !kernels {
		return nil
	}
	// Computed sides: arithmetic kernels feed the same comparison loops.
	lk := compileVecExpr(n.L, f)
	rk := compileVecExpr(n.R, f)
	if lk != nil && rk != nil {
		return kernelPairFilter(lk, rk, n.Op)
	}
	if lk != nil {
		if cv, ok := constOf(n.R); ok {
			return kernelConstFilter(lk, n.Op, cv)
		}
	}
	if rk != nil {
		if cv, ok := constOf(n.L); ok {
			return kernelConstFilter(rk, flipOp(n.Op), cv)
		}
	}
	return nil
}

// selConstCmp refines sel with col ⟨op⟩ const, dispatching on the
// column's runtime representation.
func selConstCmp(col *vec.Col, b *vec.Batch, cv values.Value, lt, eq, gt bool, sel []int) []int {
	switch {
	case col.Tag == vec.Int64 && cv.Kind() == values.KindInt:
		return filterIntConst(col, b, cv.Int(), lt, eq, gt, sel)
	case col.Tag == vec.Int64 && cv.Kind() == values.KindFloat:
		return filterIntFloatConst(col, b, cv.Float(), lt, eq, gt, sel)
	case col.Tag == vec.Float64 && cv.IsNumeric():
		return filterFloatConst(col, b, cv.Float(), lt, eq, gt, sel)
	case col.Tag == vec.Str && cv.Kind() == values.KindString:
		return filterStrConst(col, b, cv.Str(), lt, eq, gt, sel)
	case col.Tag == vec.StrDict && cv.Kind() == values.KindString:
		return filterDictConst(col, b, cv.Str(), lt, eq, gt, sel)
	default:
		return filterBoxedConst(col, b, cv, lt, eq, gt, sel)
	}
}

// colConstFilter builds the slot-vs-constant kernel factory.
func colConstFilter(idx int, op mcl.BinOp, cv values.Value) func() batchFilter {
	lt, eq, gt := cmpMask(op)
	return func() batchFilter {
		// Non-nil even when empty: a nil Sel means "all rows live".
		sel := make([]int, 0, 64)
		return func(b *vec.Batch) error {
			sel = sel[:0]
			if cv.IsNull() {
				b.Sel = sel // comparisons with null are uniformly false
				return nil
			}
			sel = selConstCmp(&b.Cols[idx], b, cv, lt, eq, gt, sel)
			b.Sel = sel
			return nil
		}
	}
}

// kernelConstFilter builds the computed-column-vs-constant filter
// factory: the kernel evaluates over the current live rows, then the
// comparison loops refine the selection.
func kernelConstFilter(mk func() vecExpr, op mcl.BinOp, cv values.Value) func() batchFilter {
	lt, eq, gt := cmpMask(op)
	return func() batchFilter {
		k := mk()
		sel := make([]int, 0, 64)
		return func(b *vec.Batch) error {
			// The kernel runs even against a null constant (uniformly
			// false comparison): unlike a slot read it can error — e.g.
			// a division by zero — and the row engine surfaces that.
			col, err := k(b)
			if err != nil {
				return err
			}
			sel = sel[:0]
			if cv.IsNull() {
				b.Sel = sel
				return nil
			}
			sel = selConstCmp(col, b, cv, lt, eq, gt, sel)
			b.Sel = sel
			return nil
		}
	}
}

// kernelPairFilter builds the computed-vs-computed filter factory with
// typed comparison loops (slot references compile to identity kernels,
// so slot-vs-kernel shapes land here too).
func kernelPairFilter(mkL, mkR func() vecExpr, op mcl.BinOp) func() batchFilter {
	lt, eq, gt := cmpMask(op)
	return func() batchFilter {
		lk, rk := mkL(), mkR()
		sel := make([]int, 0, 64)
		return func(b *vec.Batch) error {
			lc, err := lk(b)
			if err != nil {
				return err
			}
			rc, err := rk(b)
			if err != nil {
				return err
			}
			sel = sel[:0]
			sel = selPairCmp(lc, rc, b, lt, eq, gt, sel)
			b.Sel = sel
			return nil
		}
	}
}

// selPairCmp refines sel with lc ⟨op⟩ rc per live row, with typed fast
// paths for the numeric and string pairings.
func selPairCmp(lc, rc *vec.Col, b *vec.Batch, lt, eq, gt bool, sel []int) []int {
	n := b.Len()
	nullAt := func(c *vec.Col, i int) bool { return c.Nulls != nil && c.Nulls[i] }
	switch {
	case lc.Tag == vec.Int64 && rc.Tag == vec.Int64:
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if nullAt(lc, i) || nullAt(rc, i) {
				continue
			}
			a, c := lc.Ints[i], rc.Ints[i]
			if (a < c && lt) || (a == c && eq) || (a > c && gt) {
				sel = append(sel, i)
			}
		}
	case numericTag(lc.Tag) && numericTag(rc.Tag):
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if nullAt(lc, i) || nullAt(rc, i) {
				continue
			}
			cmp := values.CompareFloats(numAt(lc, i), numAt(rc, i))
			if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
				sel = append(sel, i)
			}
		}
	case strTag(lc.Tag) && strTag(rc.Tag):
		for k := 0; k < n; k++ {
			i := b.Index(k)
			if nullAt(lc, i) || nullAt(rc, i) {
				continue
			}
			cmp := strings.Compare(lc.StrAt(i), rc.StrAt(i))
			if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
				sel = append(sel, i)
			}
		}
	default:
		for k := 0; k < n; k++ {
			i := b.Index(k)
			lv := lc.Value(i)
			if lv.IsNull() {
				continue
			}
			rv := rc.Value(i)
			if rv.IsNull() {
				continue
			}
			cmp := values.Compare(lv, rv)
			if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
				sel = append(sel, i)
			}
		}
	}
	return sel
}

func filterIntConst(col *vec.Col, b *vec.Batch, c int64, lt, eq, gt bool, out []int) []int {
	if b.Sel == nil {
		for i, v := range col.Ints[:b.N] {
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			if (v < c && lt) || (v == c && eq) || (v > c && gt) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range b.Sel {
		if col.Nulls != nil && col.Nulls[i] {
			continue
		}
		v := col.Ints[i]
		if (v < c && lt) || (v == c && eq) || (v > c && gt) {
			out = append(out, i)
		}
	}
	return out
}

func filterIntFloatConst(col *vec.Col, b *vec.Batch, c float64, lt, eq, gt bool, out []int) []int {
	keep := func(v int64) bool {
		cmp := values.CompareFloats(float64(v), c)
		return (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt)
	}
	if b.Sel == nil {
		for i, v := range col.Ints[:b.N] {
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			if keep(v) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range b.Sel {
		if col.Nulls != nil && col.Nulls[i] {
			continue
		}
		if keep(col.Ints[i]) {
			out = append(out, i)
		}
	}
	return out
}

func filterFloatConst(col *vec.Col, b *vec.Batch, c float64, lt, eq, gt bool, out []int) []int {
	if b.Sel == nil {
		for i, v := range col.Floats[:b.N] {
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			cmp := values.CompareFloats(v, c)
			if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range b.Sel {
		if col.Nulls != nil && col.Nulls[i] {
			continue
		}
		cmp := values.CompareFloats(col.Floats[i], c)
		if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
			out = append(out, i)
		}
	}
	return out
}

func filterStrConst(col *vec.Col, b *vec.Batch, c string, lt, eq, gt bool, out []int) []int {
	if b.Sel == nil {
		for i, v := range col.Strs[:b.N] {
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			cmp := strings.Compare(v, c)
			if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range b.Sel {
		if col.Nulls != nil && col.Nulls[i] {
			continue
		}
		cmp := strings.Compare(col.Strs[i], c)
		if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
			out = append(out, i)
		}
	}
	return out
}

// strTag reports whether the tag carries string payloads.
func strTag(t vec.Tag) bool { return t == vec.Str || t == vec.StrDict }

// filterDictConst is the dictionary-code fast path: one binary search of
// the constant in the sorted dictionary, then a pure integer comparison
// per row — no string is touched, let alone materialized. When the
// constant is absent, pos is its insertion point, so code < pos still
// means "row string sorts below the constant" and equality is impossible.
func filterDictConst(col *vec.Col, b *vec.Batch, c string, lt, eq, gt bool, out []int) []int {
	lo, hi := 0, len(col.Dict)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if col.Dict[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := uint32(lo)
	present := lo < len(col.Dict) && col.Dict[lo] == c
	keep := func(code uint32) bool {
		if code < pos {
			return lt
		}
		if present && code == pos {
			return eq
		}
		return gt
	}
	if b.Sel == nil {
		for i, code := range col.Codes[:b.N] {
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			if keep(code) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range b.Sel {
		if col.Nulls != nil && col.Nulls[i] {
			continue
		}
		if keep(col.Codes[i]) {
			out = append(out, i)
		}
	}
	return out
}

func filterBoxedConst(col *vec.Col, b *vec.Batch, cv values.Value, lt, eq, gt bool, out []int) []int {
	n := b.Len()
	for k := 0; k < n; k++ {
		i := b.Index(k)
		v := col.Value(i)
		if v.IsNull() {
			continue
		}
		cmp := values.Compare(v, cv)
		if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
			out = append(out, i)
		}
	}
	return out
}

// colColFilter builds the slot-vs-slot filter factory: one typed (or
// boxed-fallback) comparison loop per batch, no closure chain per row.
func colColFilter(li, ri int, op mcl.BinOp) func() batchFilter {
	lt, eq, gt := cmpMask(op)
	return func() batchFilter {
		// Non-nil even when empty: a nil Sel means "all rows live".
		sel := make([]int, 0, 64)
		return func(b *vec.Batch) error {
			sel = sel[:0]
			sel = selPairCmp(&b.Cols[li], &b.Cols[ri], b, lt, eq, gt, sel)
			b.Sel = sel
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// Vectorized reduce
// ---------------------------------------------------------------------------

// aggKind selects the reduce fast path. aggGeneric boxes every head value
// into the collector; the others accumulate unboxed partials over typed
// columns and absorb them into the collector at finish.
type aggKind uint8

const (
	aggGeneric aggKind = iota
	aggCount
	aggSum
	aggAvg
	aggMin
	aggMax
)

// reduceConsumer folds pipeline batches into a monoid collector. One
// consumer serves one serial run or one morsel worker; reset swaps the
// collector between morsels so partial aggregates merge in morsel order.
type reduceConsumer struct {
	acc        *monoid.Collector
	filter     batchFilter // may be nil
	headIdx    int         // >= 0: head is this slot (no per-row evaluation)
	headKernel vecExpr     // non-nil: head is a vectorized expression kernel
	head       compiledExpr
	row        []values.Value
	kind       aggKind

	// Unboxed partial aggregates, folded into acc by finish. Typed
	// kernels only run on columns without a validity mask; batches with
	// nulls (or boxed/string payloads) take the per-row boxed path so
	// null semantics stay byte-identical with the row engine.
	isum, count        int64
	fsum               float64
	sawInt, sawFloat   bool
	imin, imax         int64
	fmin, fmax         float64
	haveIMin, haveIMax bool
	haveFMin, haveFMax bool
	best               values.Value // boxed min/max candidate
	haveBest           bool

	// reserve, when non-nil, charges the query memory budget for boxed
	// values retained by the collector (collection monoids accumulate
	// every row; aggregates hold O(1) state and never charge).
	reserve func(delta int64) error
}

// approxValueBytes is a shallow per-value footprint estimate for budget
// accounting of boxed accumulation: interface/struct overhead plus the
// variable payload of strings and a flat allowance for nested values.
// Charged once per batch from a sampled value, it bounds the dominant
// allocator without walking every row.
func approxValueBytes(v values.Value) int64 {
	const base = 56 // tagged value struct overhead
	switch v.Kind() {
	case values.KindString:
		return base + int64(v.Len())
	case values.KindRecord:
		n := int64(len(v.Fields()))
		return base + n*(base+16)
	case values.KindList, values.KindBag, values.KindSet:
		return base + int64(v.Len())*base
	default:
		return base
	}
}

// chargeBoxed charges n boxed values against the query budget, sized by
// a sampled representative.
func (rc *reduceConsumer) chargeBoxed(sample values.Value, n int) error {
	if rc.reserve == nil || n == 0 {
		return nil
	}
	return rc.reserve(int64(n) * approxValueBytes(sample))
}

// reset points the consumer at a fresh collector and clears partials.
func (rc *reduceConsumer) reset(acc *monoid.Collector) {
	rc.acc = acc
	rc.isum, rc.count, rc.fsum = 0, 0, 0
	rc.sawInt, rc.sawFloat = false, false
	rc.haveIMin, rc.haveIMax, rc.haveFMin, rc.haveFMax = false, false, false, false
	rc.best, rc.haveBest = values.Null, false
}

func (rc *reduceConsumer) consume(b *vec.Batch) error {
	if rc.filter != nil {
		if err := rc.filter(b); err != nil {
			return err
		}
	}
	n := b.Len()
	if n == 0 {
		return nil
	}
	if rc.headIdx < 0 && rc.headKernel == nil {
		var sample values.Value
		for k := 0; k < n; k++ {
			fillRow(b, b.Index(k), rc.row)
			v, err := rc.head(rc.row)
			if err != nil {
				return err
			}
			if k == 0 {
				sample = v
			}
			rc.acc.Add(v)
		}
		return rc.chargeBoxed(sample, n)
	}
	if rc.kind == aggCount {
		// Unit is 1 regardless of the head value; a slot head cannot
		// error and a kernel head is evaluated only to surface its
		// errors, so counting stays pure arithmetic.
		if rc.headKernel != nil {
			if _, err := rc.headKernel(b); err != nil {
				return err
			}
		}
		rc.count += int64(n)
		return nil
	}
	var col *vec.Col
	if rc.headIdx >= 0 {
		col = &b.Cols[rc.headIdx]
	} else {
		var err error
		col, err = rc.headKernel(b)
		if err != nil {
			return err
		}
	}
	if col.Nulls == nil {
		switch rc.kind {
		case aggSum:
			switch col.Tag {
			case vec.Int64:
				var s int64
				if b.Sel == nil {
					for _, v := range col.Ints[:b.N] {
						s += v
					}
				} else {
					for _, i := range b.Sel {
						s += col.Ints[i]
					}
				}
				rc.isum += s
				rc.sawInt = true
				return nil
			case vec.Float64:
				var s float64
				if b.Sel == nil {
					for _, v := range col.Floats[:b.N] {
						s += v
					}
				} else {
					for _, i := range b.Sel {
						s += col.Floats[i]
					}
				}
				rc.fsum += s
				rc.sawFloat = true
				return nil
			}
		case aggAvg:
			// avg accumulates its sum as float64 (matching avgMonoid.Unit).
			switch col.Tag {
			case vec.Int64:
				var s float64
				if b.Sel == nil {
					for _, v := range col.Ints[:b.N] {
						s += float64(v)
					}
				} else {
					for _, i := range b.Sel {
						s += float64(col.Ints[i])
					}
				}
				rc.fsum += s
				rc.count += int64(n)
				return nil
			case vec.Float64:
				var s float64
				if b.Sel == nil {
					for _, v := range col.Floats[:b.N] {
						s += v
					}
				} else {
					for _, i := range b.Sel {
						s += col.Floats[i]
					}
				}
				rc.fsum += s
				rc.count += int64(n)
				return nil
			}
		case aggMin, aggMax:
			switch col.Tag {
			case vec.Int64:
				if b.Sel == nil {
					for _, v := range col.Ints[:b.N] {
						rc.noteInt(v)
					}
				} else {
					for _, i := range b.Sel {
						rc.noteInt(col.Ints[i])
					}
				}
				return nil
			case vec.Float64:
				if b.Sel == nil {
					for _, v := range col.Floats[:b.N] {
						rc.noteFloat(v)
					}
				} else {
					for _, i := range b.Sel {
						rc.noteFloat(col.Floats[i])
					}
				}
				return nil
			}
		}
	}
	// Boxed fallback kernels: same accumulation as the collector would
	// perform per row, minus the per-row boxing of partial aggregates.
	// Numeric conversions go through Value.Float/Kind exactly as the
	// monoids' Unit/Merge would, so error behaviour (panics on null or
	// non-numeric sum/avg inputs) is unchanged.
	switch rc.kind {
	case aggSum:
		for k := 0; k < n; k++ {
			v := col.Value(b.Index(k))
			switch v.Kind() {
			case values.KindInt:
				rc.isum += v.Int()
				rc.sawInt = true
			default:
				rc.fsum += v.Float()
				rc.sawFloat = true
			}
		}
	case aggAvg:
		for k := 0; k < n; k++ {
			rc.fsum += col.Value(b.Index(k)).Float()
		}
		rc.count += int64(n)
	case aggMin, aggMax:
		want := -1
		if rc.kind == aggMax {
			want = 1
		}
		for k := 0; k < n; k++ {
			v := col.Value(b.Index(k))
			if v.IsNull() {
				continue
			}
			if !rc.haveBest || values.Compare(v, rc.best)*want > 0 {
				rc.best = v
				rc.haveBest = true
			}
		}
	default:
		for k := 0; k < n; k++ {
			rc.acc.Add(col.Value(b.Index(k)))
		}
		return rc.chargeBoxed(col.Value(b.Index(0)), n)
	}
	return nil
}

func (rc *reduceConsumer) noteInt(v int64) {
	if rc.kind == aggMin {
		if !rc.haveIMin || v < rc.imin {
			rc.imin = v
		}
		rc.haveIMin = true
		return
	}
	if !rc.haveIMax || v > rc.imax {
		rc.imax = v
	}
	rc.haveIMax = true
}

func (rc *reduceConsumer) noteFloat(v float64) {
	if rc.kind == aggMin {
		if !rc.haveFMin || values.CompareFloats(v, rc.fmin) < 0 {
			rc.fmin = v
		}
		rc.haveFMin = true
		return
	}
	if !rc.haveFMax || values.CompareFloats(v, rc.fmax) > 0 {
		rc.fmax = v
	}
	rc.haveFMax = true
}

// finish folds the unboxed partials into the collector. It must be called
// exactly once per reset before the collector is merged or finalized.
func (rc *reduceConsumer) finish() {
	switch rc.kind {
	case aggCount:
		if rc.count > 0 {
			rc.acc.Absorb(values.NewInt(rc.count))
		}
	case aggSum:
		switch {
		case rc.sawInt && rc.sawFloat:
			rc.acc.Absorb(values.NewFloat(rc.fsum + float64(rc.isum)))
		case rc.sawInt:
			rc.acc.Absorb(values.NewInt(rc.isum))
		case rc.sawFloat:
			rc.acc.Absorb(values.NewFloat(rc.fsum))
		}
	case aggAvg:
		if rc.count > 0 {
			rc.acc.Absorb(values.NewRecord(
				values.Field{Name: "sum", Val: values.NewFloat(rc.fsum)},
				values.Field{Name: "count", Val: values.NewInt(rc.count)},
			))
		}
	case aggMin, aggMax:
		if rc.haveIMin || rc.haveIMax {
			v := rc.imin
			if rc.kind == aggMax {
				v = rc.imax
			}
			rc.acc.Absorb(values.NewInt(v))
		}
		if rc.haveFMin || rc.haveFMax {
			v := rc.fmin
			if rc.kind == aggMax {
				v = rc.fmax
			}
			rc.acc.Absorb(values.NewFloat(v))
		}
		if rc.haveBest {
			rc.acc.Absorb(rc.best)
		}
	}
}

// compileReduceConsumer stages the root reduce: predicate filter, head
// evaluation and monoid accumulation, with unboxed kernels when the head
// is a slot reference or a vectorized expression kernel and the monoid
// is one of count/sum/avg/min/max.
func (c *compiler) compileReduceConsumer(p *algebra.Reduce, input *compiledPlan) (func() *reduceConsumer, error) {
	var mkFilter func() batchFilter
	var err error
	if p.Pred != nil {
		mkFilter, err = c.compileFilter(p.Pred, input.frame)
		if err != nil {
			return nil, err
		}
	}
	headIdx := slotOf(p.Head, input.frame)
	var mkHeadKernel func() vecExpr
	var head compiledExpr
	if headIdx < 0 {
		if !c.opts.NoExprKernels {
			mkHeadKernel = compileVecExpr(p.Head, input.frame)
		}
		if mkHeadKernel == nil {
			c.boxedStages++
			head, err = c.compileExpr(p.Head, input.frame)
			if err != nil {
				return nil, err
			}
		} else {
			c.vecStages++
		}
	} else {
		c.vecStages++
	}
	kind := aggGeneric
	if headIdx >= 0 || mkHeadKernel != nil {
		switch p.M.Name() {
		case "count":
			kind = aggCount
		case "sum":
			kind = aggSum
		case "avg":
			kind = aggAvg
		case "min":
			kind = aggMin
		case "max":
			kind = aggMax
		}
	}
	// Only monoids that retain their inputs owe the memory budget for
	// them; scalar folds (count/sum/min/...) keep O(1) state no matter
	// how many boxed values pass through.
	reserve := c.opts.MemReserve
	switch p.M.Name() {
	case "list", "bag", "set", "array", "median":
	default:
		reserve = nil
	}
	width := input.frame.width()
	return func() *reduceConsumer {
		rc := &reduceConsumer{headIdx: headIdx, head: head, kind: kind, reserve: reserve}
		if mkHeadKernel != nil {
			rc.headKernel = mkHeadKernel()
		} else if headIdx < 0 {
			rc.row = make([]values.Value, width)
		}
		if mkFilter != nil {
			rc.filter = mkFilter()
		}
		return rc
	}, nil
}
