package jit

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"vida/internal/algebra"
	"vida/internal/mcl"
	"vida/internal/sched"
	"vida/internal/values"
	"vida/internal/vec"
)

// This file is the differential join-correctness harness: a seeded
// generator producing random join scenarios — schemas, key types, key
// distributions (uniform, skewed, all-null, all-duplicate, empty build
// or probe side), filters that force build-side compaction, residuals,
// multi-column keys — asserting that the morsel-parallel partitioned
// join, the serial jit join, the static executor and the reference
// executor all agree, across worker counts and partition counts. List
// results make the comparison order-sensitive, so agreement here means
// byte-identical output, not just equal multisets.

// diffTable is an in-memory table serving all three scan contracts: record
// iteration for the reference/static executors, batch iteration for the
// serial jit pipeline, and concurrent range scans for the morsel-parallel
// paths — the same shapes CSV scans and cache windows produce. Columns
// are typed (with validity masks) or boxed, per table, so both the
// tag-dispatched and the generic hash paths get fuzzed.
type diffTable struct {
	name   string
	fields []string
	cols   []vec.Col // full-length column storage, immutable once built
	n      int
	boxed  bool // serve boxed columns instead of typed windows
}

func (s *diffTable) Name() string { return s.name }

// Iterate implements algebra.Source for the row-at-a-time executors.
func (s *diffTable) Iterate(fields []string, yield func(values.Value) error) error {
	for i := 0; i < s.n; i++ {
		fs := make([]values.Field, len(s.fields))
		for c := range s.fields {
			fs[c] = values.Field{Name: s.fields[c], Val: s.cols[c].Value(i)}
		}
		if err := yield(values.NewRecord(fs...)); err != nil {
			return err
		}
	}
	return nil
}

// colWindow serves rows [lo,hi) of column c as a batch column.
func (s *diffTable) colWindow(c, lo, hi int) vec.Col {
	col := s.cols[c]
	if s.boxed {
		out := vec.Col{Tag: vec.Boxed, Boxed: make([]values.Value, 0, hi-lo)}
		for i := lo; i < hi; i++ {
			out.Boxed = append(out.Boxed, col.Value(i))
		}
		return out
	}
	w := vec.Col{Tag: col.Tag}
	switch col.Tag {
	case vec.Int64:
		w.Ints = col.Ints[lo:hi]
	case vec.Float64:
		w.Floats = col.Floats[lo:hi]
	case vec.Str:
		w.Strs = col.Strs[lo:hi]
	default:
		w.Tag = vec.Boxed
		w.Boxed = col.Boxed[lo:hi]
	}
	if col.Nulls != nil {
		w.Nulls = col.Nulls[lo:hi]
	}
	return w
}

func (s *diffTable) fieldIdx(fields []string) []int {
	idx := make([]int, len(fields))
	for i, f := range fields {
		idx[i] = -1
		for c, have := range s.fields {
			if have == f {
				idx[i] = c
			}
		}
		if idx[i] < 0 {
			panic("diffTable: unknown field " + f)
		}
	}
	return idx
}

// IterateBatches implements BatchSource.
func (s *diffTable) IterateBatches(fields []string, batchSize int, yield func(*vec.Batch) error) error {
	scan, n, _ := s.OpenRange(fields)
	return scan(0, n, batchSize, yield)
}

// OpenRange implements RangeBatchSource. The scan serves window slices
// of the immutable column storage and is safe for concurrent calls over
// disjoint (or even overlapping) ranges.
func (s *diffTable) OpenRange(fields []string) (func(lo, hi, batchSize int, yield func(*vec.Batch) error) error, int, bool) {
	idx := s.fieldIdx(fields)
	return func(lo, hi, batchSize int, yield func(*vec.Batch) error) error {
		var b vec.Batch
		for at := lo; at < hi; at += batchSize {
			end := at + batchSize
			if end > hi {
				end = hi
			}
			b.Cols = b.Cols[:0]
			for _, c := range idx {
				b.Cols = append(b.Cols, s.colWindow(c, at, end))
			}
			b.N = end - at
			b.Sel = nil
			if err := yield(&b); err != nil {
				return err
			}
		}
		return nil
	}, s.n, true
}

// joinScenario is one generated differential case.
type joinScenario struct {
	desc   string
	cat    algebra.MapCatalog
	plan   *algebra.Reduce
	nL, nR int
}

// genKeyCol fills n keys of the chosen type/distribution. dist:
// 0=uniform small domain (many matches), 1=uniform large domain (few
// matches), 2=skewed (~70% one hot key), 3=all-duplicate, plus an
// independent null fraction (1.0 = all-null).
func genKeyCol(rng *rand.Rand, n int, keyKind, dist int, nullFrac float64) vec.Col {
	domain := 1 + rng.Intn(16)
	if dist == 1 {
		domain = 1000 + rng.Intn(1000)
	}
	keyAt := func() int64 {
		switch dist {
		case 2:
			if rng.Float64() < 0.7 {
				return 7
			}
			return int64(rng.Intn(domain))
		case 3:
			return 42
		default:
			return int64(rng.Intn(domain))
		}
	}
	col := vec.Col{}
	var nulls []bool
	hasNull := false
	switch keyKind {
	case 0:
		col.Tag = vec.Int64
		for i := 0; i < n; i++ {
			col.Ints = append(col.Ints, keyAt())
		}
	case 1:
		col.Tag = vec.Float64
		for i := 0; i < n; i++ {
			col.Floats = append(col.Floats, float64(keyAt())*0.5)
		}
	default:
		col.Tag = vec.Str
		for i := 0; i < n; i++ {
			col.Strs = append(col.Strs, "k"+strconv.FormatInt(keyAt(), 10))
		}
	}
	for i := 0; i < n; i++ {
		isNull := rng.Float64() < nullFrac
		nulls = append(nulls, isNull)
		hasNull = hasNull || isNull
	}
	if hasNull {
		col.Nulls = nulls
	}
	return col
}

func genIntCol(rng *rand.Rand, n, domain int) vec.Col {
	col := vec.Col{Tag: vec.Int64}
	for i := 0; i < n; i++ {
		col.Ints = append(col.Ints, int64(rng.Intn(domain)))
	}
	return col
}

// genJoinScenario draws one random join case.
func genJoinScenario(rng *rand.Rand) joinScenario {
	sizes := []int{0, 1, 7, 120, 700, 1500}
	nL := sizes[rng.Intn(len(sizes))]
	nR := sizes[rng.Intn(len(sizes))]
	keyKind := rng.Intn(3)
	distL := rng.Intn(4)
	distR := rng.Intn(4)
	nullFrac := []float64{0, 0, 0.15, 1.0}[rng.Intn(4)]
	multiKey := rng.Intn(4) == 0
	residual := rng.Intn(3) == 0
	buildFilter := rng.Intn(3) == 0
	boxedL := rng.Intn(4) == 0
	boxedR := rng.Intn(4) == 0
	monoidName := []string{"bag", "list", "sum", "count"}[rng.Intn(4)]

	lFields := []string{"k", "a"}
	rFields := []string{"k", "b"}
	lCols := []vec.Col{genKeyCol(rng, nL, keyKind, distL, nullFrac), genIntCol(rng, nL, 100)}
	rCols := []vec.Col{genKeyCol(rng, nR, keyKind, distR, nullFrac), genIntCol(rng, nR, 100)}
	if multiKey {
		lFields = append(lFields, "k2")
		rFields = append(rFields, "k2")
		lCols = append(lCols, genIntCol(rng, nL, 4))
		rCols = append(rCols, genIntCol(rng, nR, 4))
	}
	left := &diffTable{name: "L", fields: lFields, cols: lCols, n: nL, boxed: boxedL}
	right := &diffTable{name: "R", fields: rFields, cols: rCols, n: nR, boxed: boxedR}

	on := []algebra.EquiPair{{LExpr: mcl.MustParse("x.k"), RExpr: mcl.MustParse("y.k")}}
	if multiKey {
		on = append(on, algebra.EquiPair{LExpr: mcl.MustParse("x.k2"), RExpr: mcl.MustParse("y.k2")})
	}
	join := &algebra.Join{
		L:  &algebra.Scan{Source: "L", Var: "x", Fields: lFields},
		R:  &algebra.Scan{Source: "R", Var: "y", Fields: rFields},
		On: on,
	}
	if buildFilter {
		// A selective build-side filter drives retainForBuild through its
		// compaction path (survivors re-indexed before partitioning).
		join.R.(*algebra.Scan).Filter = mcl.MustParse("y.b < 20")
	}
	if residual {
		join.Residual = mcl.MustParse("x.a < y.b")
	}
	var head mcl.Expr
	switch monoidName {
	case "sum":
		head = mcl.MustParse("x.a + y.b")
	case "count":
		head = mcl.MustParse("x.a")
	default:
		head = mcl.MustParse("(k := x.k, a := x.a, b := y.b)")
	}
	return joinScenario{
		desc: fmt.Sprintf("nL=%d nR=%d key=%d distL=%d distR=%d nulls=%.2f multi=%v residual=%v filter=%v boxedL=%v boxedR=%v m=%s",
			nL, nR, keyKind, distL, distR, nullFrac, multiKey, residual, buildFilter, boxedL, boxedR, monoidName),
		cat:  algebra.MapCatalog{"L": left, "R": right},
		plan: &algebra.Reduce{M: mustMonoid(monoidName), Head: head, Input: join},
		nL:   nL, nR: nR,
	}
}

// fuzzSeed returns the deterministic seed (override: VIDA_JOIN_FUZZ_SEED).
func fuzzSeed(t *testing.T) int64 {
	if s := os.Getenv("VIDA_JOIN_FUZZ_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad VIDA_JOIN_FUZZ_SEED %q: %v", s, err)
		}
		return v
	}
	return 0xD1FF
}

func TestJoinDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(fuzzSeed(t)))
	pool := sched.NewPool(4)
	defer pool.Close()
	cases := 30
	if testing.Short() {
		cases = 8
	}
	workerCounts := []int{2, 4, 8}
	partitionCounts := []int{1, 4, 16}
	for ci := 0; ci < cases; ci++ {
		sc := genJoinScenario(rng)
		want, err := algebra.Reference{}.Run(sc.plan, sc.cat)
		if err != nil {
			t.Fatalf("case %d (%s): reference: %v", ci, sc.desc, err)
		}
		if got, err := (StaticExecutor{}).Run(sc.plan, sc.cat); err != nil {
			t.Fatalf("case %d (%s): static: %v", ci, sc.desc, err)
		} else if !values.Equal(got, want) {
			t.Fatalf("case %d (%s): static diverged:\n got %v\nwant %v", ci, sc.desc, got, want)
		}
		serial := Executor{Opts: Options{Workers: 1, BatchSize: 64}}
		if got, err := serial.Run(sc.plan, sc.cat); err != nil {
			t.Fatalf("case %d (%s): jit serial: %v", ci, sc.desc, err)
		} else if !values.Equal(got, want) {
			t.Fatalf("case %d (%s): jit serial diverged:\n got %v\nwant %v", ci, sc.desc, got, want)
		}
		for _, w := range workerCounts {
			for _, parts := range partitionCounts {
				par := Executor{Opts: Options{
					Workers:            w,
					BatchSize:          64,
					ParallelThreshold:  1,
					JoinBuildThreshold: 1,
					JoinPartitions:     parts,
					Pool:               pool,
				}}
				got, err := par.Run(sc.plan, sc.cat)
				if err != nil {
					t.Fatalf("case %d (%s) w=%d parts=%d: %v", ci, sc.desc, w, parts, err)
				}
				if !values.Equal(got, want) {
					t.Fatalf("case %d (%s) w=%d parts=%d diverged:\n got %v\nwant %v",
						ci, sc.desc, w, parts, got, want)
				}
			}
		}
	}
}

// TestJoinNullKeysNeverMatch pins "null never matches null" across every
// executor and every jit configuration, including the compacted-build
// path: a build side whose filter keeps few survivors exercises
// retainForBuild's Compact re-indexing, and the all-null key columns on
// both sides must still produce zero matches — the validity mask, not
// the (zeroed) payload, decides.
func TestJoinNullKeysNeverMatch(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	n := 600
	nullKeys := func(n int) vec.Col {
		col := vec.Col{Tag: vec.Int64, Ints: make([]int64, n), Nulls: make([]bool, n)}
		for i := range col.Nulls {
			col.Nulls[i] = true // payload stays 0 — equal across all rows
		}
		return col
	}
	seq := func(n int) vec.Col {
		col := vec.Col{Tag: vec.Int64}
		for i := 0; i < n; i++ {
			col.Ints = append(col.Ints, int64(i))
		}
		return col
	}
	left := &diffTable{name: "L", fields: []string{"k", "a"}, cols: []vec.Col{nullKeys(n), seq(n)}, n: n}
	right := &diffTable{name: "R", fields: []string{"k", "b"}, cols: []vec.Col{nullKeys(n), seq(n)}, n: n}
	cat := algebra.MapCatalog{"L": left, "R": right}
	plan := &algebra.Reduce{
		M:    mustMonoid("count"),
		Head: mcl.MustParse("x.a"),
		Input: &algebra.Join{
			L: &algebra.Scan{Source: "L", Var: "x", Fields: []string{"k", "a"}},
			// The sparse filter (survival < 1/4) forces Compact on every
			// retained build batch.
			R:  &algebra.Scan{Source: "R", Var: "y", Fields: []string{"k", "b"}, Filter: mcl.MustParse("y.b % 7 = 0")},
			On: []algebra.EquiPair{{LExpr: mcl.MustParse("x.k"), RExpr: mcl.MustParse("y.k")}},
		},
	}
	check := func(name string, got values.Value, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Int() != 0 {
			t.Fatalf("%s: null keys matched: count = %v", name, got)
		}
	}
	got, err := algebra.Reference{}.Run(plan, cat)
	check("reference", got, err)
	got, err = (StaticExecutor{}).Run(plan, cat)
	check("static", got, err)
	got, err = (Executor{Opts: Options{Workers: 1}}).Run(plan, cat)
	check("jit serial", got, err)
	for _, parts := range []int{1, 8} {
		got, err = (Executor{Opts: Options{
			Workers: 4, BatchSize: 64, ParallelThreshold: 1, JoinBuildThreshold: 1,
			JoinPartitions: parts, Pool: pool,
		}}).Run(plan, cat)
		check(fmt.Sprintf("jit parallel parts=%d", parts), got, err)
	}
}
