package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vida"
	"vida/internal/algebra"
	"vida/internal/sched"
	"vida/internal/sdg"
	"vida/internal/serve"
	"vida/internal/values"
	"vida/internal/workload"
)

// newTestEngine builds an engine over generated CSV+JSON workload files.
func newTestEngine(t testing.TB, pool *sched.Pool, extra ...vida.Option) *vida.Engine {
	t.Helper()
	dir := t.TempDir()
	sc := workload.Scale{
		PatientsRows:   900,
		PatientsCols:   12,
		GeneticsRows:   700,
		GeneticsCols:   10,
		RegionsObjects: 150,
	}
	paths, err := workload.GenerateAll(dir, sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	var opts []vida.Option
	if pool != nil {
		opts = append(opts, vida.WithScheduler(pool))
	}
	opts = append(opts, extra...)
	eng := vida.New(opts...)
	if err := eng.RegisterCSV("Patients", paths.Patients, workload.PatientsSchema(sc), nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterCSV("Genetics", paths.Genetics, workload.GeneticsSchema(sc), nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterJSON("BrainRegions", paths.Regions, ""); err != nil {
		t.Fatal(err)
	}
	return eng
}

func newTestServer(t testing.TB, cfg serve.Config) (*httptest.Server, *serve.Service) {
	t.Helper()
	eng := newTestEngine(t, nil)
	svc := serve.NewService(eng, nil, cfg)
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	t.Cleanup(ts.Close)
	return ts, svc
}

func postQuery(t testing.TB, url, endpoint, query string) (int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": query})
	resp, err := http.Post(url+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out
}

func TestQueryEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	code, out := postQuery(t, ts.URL, "/query", "for { p <- Patients, p.age > 40 } yield count p")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if _, ok := out["result"]; !ok {
		t.Fatalf("no result in %v", out)
	}
	if out["cached"] != false {
		t.Fatalf("first query reported cached: %v", out)
	}
	// Identical query at the same epoch is served from the result cache.
	code, out2 := postQuery(t, ts.URL, "/query", "for { p <- Patients, p.age > 40 } yield count p")
	if code != http.StatusOK || out2["cached"] != true {
		t.Fatalf("second query not cached: %d %v", code, out2)
	}
	if fmt.Sprint(out["result"]) != fmt.Sprint(out2["result"]) {
		t.Fatalf("cached result differs: %v vs %v", out["result"], out2["result"])
	}
}

func TestSQLEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	code, sqlOut := postQuery(t, ts.URL, "/sql", "SELECT COUNT(*) FROM Patients WHERE age > 40")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, sqlOut)
	}
	code, mclOut := postQuery(t, ts.URL, "/query", "for { p <- Patients, p.age > 40 } yield count p")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, mclOut)
	}
	if fmt.Sprint(sqlOut["result"]) != fmt.Sprint(mclOut["result"]) {
		t.Fatalf("SQL and comprehension disagree: %v vs %v", sqlOut["result"], mclOut["result"])
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	if code, _ := postQuery(t, ts.URL, "/query", "for { p <- Nowhere } yield count p"); code != http.StatusBadRequest {
		t.Fatalf("unknown source: status %d", code)
	}
	if code, _ := postQuery(t, ts.URL, "/query", "for { p <- "); code != http.StatusBadRequest {
		t.Fatalf("syntax error: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}
}

func TestCatalogStatsExplainHealth(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	get := func(path string) map[string]any {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	cat := get("/catalog")
	if srcs, ok := cat["sources"].([]any); !ok || len(srcs) != 3 {
		t.Fatalf("catalog = %v", cat)
	}
	postQuery(t, ts.URL, "/query", "for { p <- Patients } yield count p")
	stats := get("/stats")
	if _, ok := stats["service"]; !ok {
		t.Fatalf("stats missing service section: %v", stats)
	}
	if _, ok := stats["engine"]; !ok {
		t.Fatalf("stats missing engine section: %v", stats)
	}
	explain := get("/explain?q=" + "for+%7B+p+%3C-+Patients+%7D+yield+count+p")
	if plan, _ := explain["plan"].(string); plan == "" {
		t.Fatalf("explain = %v", explain)
	}
	if ok := get("/healthz"); ok["ok"] != true {
		t.Fatalf("healthz = %v", ok)
	}
}

// gateSource blocks inside its scan until released — the deterministic
// way to hold a query in flight.
type gateSource struct {
	name    string
	entered chan struct{}
	release chan struct{}
}

func (g *gateSource) Name() string { return g.name }

func (g *gateSource) Iterate(fields []string, yield func(values.Value) error) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.release
	return yield(values.NewRecord(values.Field{Name: "x", Val: values.NewInt(1)}))
}

var _ algebra.Source = (*gateSource)(nil)

func registerGate(t testing.TB, eng *vida.Engine, name string) *gateSource {
	t.Helper()
	g := &gateSource{name: name, entered: make(chan struct{}, 16), release: make(chan struct{})}
	desc := sdg.DefaultDescription(name, sdg.FormatTable, "", sdg.Bag(sdg.Unknown))
	if err := eng.Internal().RegisterSource(desc, g); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAdmissionLimitReturns429(t *testing.T) {
	eng := newTestEngine(t, nil)
	gate := registerGate(t, eng, "Gate")
	svc := serve.NewService(eng, nil, serve.Config{MaxInFlight: 1})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()

	// Occupy the only slot with a query blocked mid-scan.
	firstDone := make(chan int, 1)
	go func() {
		code, _ := postQuery(t, ts.URL, "/query", "for { g <- Gate } yield count g")
		firstDone <- code
	}()
	<-gate.entered

	// The slot is taken: the next query must be shed with 429.
	code, body := postQuery(t, ts.URL, "/query", "for { p <- Patients } yield count p")
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d (%v), want 429", code, body)
	}

	close(gate.release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("gated query finished with %d", code)
	}
	// Slot released: queries are admitted again.
	if code, _ := postQuery(t, ts.URL, "/query", "for { p <- Patients } yield count p"); code != http.StatusOK {
		t.Fatalf("after release: status %d", code)
	}
	st := svc.StatsSnapshot()
	if st.Rejected != 1 || st.InFlight != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// slowSource yields rows forever-ish with a pause, so ctx cancellation
// is always observed mid-scan.
type slowSource struct{ name string }

func (s *slowSource) Name() string { return s.name }

func (s *slowSource) Iterate(fields []string, yield func(values.Value) error) error {
	row := values.NewRecord(values.Field{Name: "x", Val: values.NewInt(1)})
	for i := 0; i < 1_000_000; i++ {
		if i%64 == 0 {
			time.Sleep(time.Millisecond)
		}
		if err := yield(row); err != nil {
			return err
		}
	}
	return nil
}

func TestQueryTimeoutReturns504(t *testing.T) {
	eng := newTestEngine(t, nil)
	desc := sdg.DefaultDescription("Slow", sdg.FormatTable, "", sdg.Bag(sdg.Unknown))
	if err := eng.Internal().RegisterSource(desc, &slowSource{name: "Slow"}); err != nil {
		t.Fatal(err)
	}
	svc := serve.NewService(eng, nil, serve.Config{})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{
		"query":      "for { s <- Slow } yield count s",
		"timeout_ms": 50,
	})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, raw)
	}
	if st := svc.StatsSnapshot(); st.Cancelled != 1 {
		t.Fatalf("stats = %+v, want one cancelled query", st)
	}
}

func TestClientCancellationAbortsQuery(t *testing.T) {
	eng := newTestEngine(t, nil)
	desc := sdg.DefaultDescription("Slow", sdg.FormatTable, "", sdg.Bag(sdg.Unknown))
	if err := eng.Internal().RegisterSource(desc, &slowSource{name: "Slow"}); err != nil {
		t.Fatal(err)
	}
	svc := serve.NewService(eng, nil, serve.Config{})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := svc.Query(ctx, "for { s <- Slow } yield count s", nil, 0)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not abort the query")
	}
	if st := svc.StatsSnapshot(); st.InFlight != 0 {
		t.Fatalf("in-flight slot not released: %+v", st)
	}
}

// TestConcurrentClientsMatchSerial is the acceptance check: many
// concurrent POST /query clients get byte-identical answers to serial
// Engine.Query runs.
func TestConcurrentClientsMatchSerial(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	eng := newTestEngine(t, pool)
	svc := serve.NewService(eng, pool, serve.Config{MaxInFlight: 64})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()

	queries := []string{
		"for { p <- Patients, p.age > 40 } yield count p",
		"for { p <- Patients } yield sum p.age",
		"for { p <- Patients, p.gender = \"F\" } yield count p",
		"for { g <- Genetics, g.snp0 > 0 } yield count g",
		"for { r <- BrainRegions } yield count r",
		"for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 55 } yield count p",
	}
	// Serial ground truth from an identical, separate engine.
	serial := newTestEngine(t, nil)
	expected := make(map[string]string, len(queries))
	for _, q := range queries {
		res, err := serial.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		expected[q] = res.String()
	}

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(queries))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range queries {
				q := queries[(i+c)%len(queries)]
				code, out := postQuery(t, ts.URL, "/query", q)
				if code != http.StatusOK {
					errs <- fmt.Errorf("client %d: %s: status %d (%v)", c, q, code, out)
					return
				}
				// All the workload queries reduce to integers, so the JSON
				// number and the engine's literal rendering coincide.
				if got := fmt.Sprint(out["result"]); got != expected[q] {
					errs <- fmt.Errorf("client %d: %s: got %s, serial %s", c, q, got, expected[q])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every query answered identically: re-check via the service outcome
	// values against the serial renderings.
	for _, q := range queries {
		out, err := svc.Query(context.Background(), q, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got := out.Result.String(); got != expected[q] {
			t.Fatalf("%s: concurrent result %s, serial %s", q, got, expected[q])
		}
	}
}

// TestCachedResultServedWhileSaturated: result-cache hits execute
// nothing, so they must be served even when every admission slot is
// held (the lookup happens before the semaphore).
func TestCachedResultServedWhileSaturated(t *testing.T) {
	eng := newTestEngine(t, nil)
	gate := registerGate(t, eng, "Gate")
	svc := serve.NewService(eng, nil, serve.Config{MaxInFlight: 1})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()

	warmQ := "for { p <- Patients } yield count p"
	if code, _ := postQuery(t, ts.URL, "/query", warmQ); code != http.StatusOK {
		t.Fatal("warmup failed")
	}
	firstDone := make(chan struct{})
	go func() {
		postQuery(t, ts.URL, "/query", "for { g <- Gate } yield count g")
		close(firstDone)
	}()
	<-gate.entered
	// Saturated: a fresh query is shed, but the cached one still serves.
	if code, _ := postQuery(t, ts.URL, "/query", "for { p <- Patients } yield sum p.age"); code != http.StatusTooManyRequests {
		t.Fatalf("fresh query not shed while saturated: %d", code)
	}
	code, out := postQuery(t, ts.URL, "/query", warmQ)
	if code != http.StatusOK || out["cached"] != true {
		t.Fatalf("cached query while saturated: %d %v", code, out)
	}
	close(gate.release)
	<-firstDone
}

// TestTimeoutClampedToDefault: a request cannot extend its timeout past
// the configured bound.
func TestTimeoutClampedToDefault(t *testing.T) {
	eng := newTestEngine(t, nil)
	desc := sdg.DefaultDescription("Slow", sdg.FormatTable, "", sdg.Bag(sdg.Unknown))
	if err := eng.Internal().RegisterSource(desc, &slowSource{name: "Slow"}); err != nil {
		t.Fatal(err)
	}
	svc := serve.NewService(eng, nil, serve.Config{DefaultTimeout: 50 * time.Millisecond})
	start := time.Now()
	_, err := svc.Query(context.Background(), "for { s <- Slow } yield count s", nil, time.Hour)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request-supplied timeout was not clamped (took %v)", elapsed)
	}
}

// TestExecutionErrorIs500: a well-formed query that fails during
// execution (an I/O-style error mid-scan) is a server-side error, not a
// 400.
func TestExecutionErrorIs500(t *testing.T) {
	eng := vida.New(vida.WithoutCaching())
	svc := serve.NewService(eng, nil, serve.Config{})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()
	failDesc := sdg.DefaultDescription("Broken", sdg.FormatTable, "", sdg.Bag(sdg.Unknown))
	if err := eng.Internal().RegisterSource(failDesc, &failingSource{name: "Broken"}); err != nil {
		t.Fatal(err)
	}
	code, body := postQuery(t, ts.URL, "/query", "for { b <- Broken } yield count b")
	if code != http.StatusInternalServerError {
		t.Fatalf("execution error: status %d (%v), want 500", code, body)
	}
	// Frontend errors stay 400.
	if code, _ := postQuery(t, ts.URL, "/query", "for { x <- "); code != http.StatusBadRequest {
		t.Fatalf("syntax error: status %d, want 400", code)
	}
}

// failingSource errors mid-scan, simulating an I/O failure.
type failingSource struct{ name string }

func (s *failingSource) Name() string { return s.name }

func (s *failingSource) Iterate(fields []string, yield func(values.Value) error) error {
	return fmt.Errorf("disk on fire")
}
