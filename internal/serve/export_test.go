package serve

// Test hooks: the /stats↔/metrics parity test lives in the external
// serve_test package and needs the descriptor table from metrics.go.

// MetricMapping pairs one exposition name with the flattened /stats
// path it reports (empty for derived aggregates).
type MetricMapping struct {
	Name  string
	Stat  string
	Sched bool
}

// MetricMappings exports the descriptor table for the parity test.
func MetricMappings() []MetricMapping {
	out := make([]MetricMapping, 0, len(metricDefs))
	for _, d := range metricDefs {
		out = append(out, MetricMapping{Name: d.name, Stat: d.stat, Sched: d.sched})
	}
	return out
}

// HistogramStatMetricsForTest exports the map of /stats fields that are
// derived views of a histogram series.
func HistogramStatMetricsForTest() map[string]string {
	return histogramStatMetrics
}

// HistogramFamiliesForTest exports the histogram family names.
func HistogramFamiliesForTest() []string {
	return histogramFamilies
}
