package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vida/internal/sdg"
	"vida/internal/serve"
)

// postRaw posts a JSON body and returns the status and raw response.
func postRaw(t testing.TB, url, endpoint string, body map[string]any) (int, []byte) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url+endpoint, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// canonical re-encodes a decoded JSON value with sorted map keys, so
// rows from the buffered and streaming endpoints compare field-order
// insensitively.
func canonical(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestStreamMatchesQuery(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	const q = `for { p <- Patients, p.age > 40 } yield bag (id := p.id, age := p.age)`

	status, body := postRaw(t, ts.URL, "/query", map[string]any{"query": q})
	if status != http.StatusOK {
		t.Fatalf("/query status %d: %s", status, body)
	}
	var buffered struct {
		Result []any   `json:"result"`
		Rows   float64 `json:"rows"`
	}
	if err := json.Unmarshal(body, &buffered); err != nil {
		t.Fatal(err)
	}
	if len(buffered.Result) == 0 {
		t.Fatal("buffered query returned no rows")
	}
	want := map[string]int{}
	for _, row := range buffered.Result {
		want[canonical(t, row)]++
	}

	status, body = postRaw(t, ts.URL, "/stream", map[string]any{"query": q})
	if status != http.StatusOK {
		t.Fatalf("/stream status %d: %s", status, body)
	}
	got := map[string]int{}
	rows := 0
	var done struct {
		Done bool    `json:"done"`
		Rows float64 `json:"rows"`
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawDone := false
	for sc.Scan() {
		line := sc.Bytes()
		if sawDone {
			t.Fatalf("content after done record: %s", line)
		}
		var probe map[string]any
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if _, isDone := probe["done"]; isDone {
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatal(err)
			}
			sawDone = true
			continue
		}
		if msg, isErr := probe["error"]; isErr {
			t.Fatalf("stream error record: %v", msg)
		}
		got[canonical(t, probe)]++
		rows++
	}
	if !sawDone {
		t.Fatal("stream did not end with a done record")
	}
	if int(done.Rows) != rows || rows != len(buffered.Result) {
		t.Fatalf("stream rows = %d (done says %v), buffered = %d", rows, done.Rows, len(buffered.Result))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("row %s: stream has %d, buffered has %d", k, got[k], n)
		}
	}
}

func TestQueryParams(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	// Positional params via SQL.
	status, body := postRaw(t, ts.URL, "/sql", map[string]any{
		"query":  "SELECT COUNT(*) FROM Patients WHERE age > $1",
		"params": []any{40},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out struct {
		Result float64 `json:"result"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	status, body2 := postRaw(t, ts.URL, "/sql", map[string]any{
		"query": "SELECT COUNT(*) FROM Patients WHERE age > 40",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body2)
	}
	var want struct {
		Result float64 `json:"result"`
	}
	if err := json.Unmarshal(body2, &want); err != nil {
		t.Fatal(err)
	}
	if out.Result != want.Result || out.Result <= 0 {
		t.Fatalf("param result %v != literal result %v", out.Result, want.Result)
	}

	// Named params via the comprehension endpoint, object form.
	status, body = postRaw(t, ts.URL, "/query", map[string]any{
		"query":  "for { p <- Patients, p.age > $min } yield sum 1",
		"params": map[string]any{"min": 40},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result != want.Result {
		t.Fatalf("named param result %v != %v", out.Result, want.Result)
	}

	// Missing params are the client's fault: 400, not 500.
	status, _ = postRaw(t, ts.URL, "/query", map[string]any{
		"query": "for { p <- Patients, p.age > $min } yield sum 1",
	})
	if status != http.StatusBadRequest {
		t.Fatalf("missing param status = %d, want 400", status)
	}
}

// TestQueryParamsCacheKey: same text, different bindings must not share
// a result-cache entry.
func TestQueryParamsCacheKey(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	run := func(min int) float64 {
		t.Helper()
		status, body := postRaw(t, ts.URL, "/query", map[string]any{
			"query":  "for { p <- Patients, p.age > $min } yield sum 1",
			"params": map[string]any{"min": min},
		})
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		var out struct {
			Result float64 `json:"result"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out.Result
	}
	all := run(0)
	none := run(1 << 30)
	if none != 0 || all == 0 {
		t.Fatalf("cache key ignored params: min=0 → %v, min=huge → %v", all, none)
	}
}

// newSlowStreamServer builds a service over a source that yields rows
// slowly enough for timeouts and saturation windows to be observable.
func newSlowStreamServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	eng := newTestEngine(t, nil)
	desc := sdg.DefaultDescription("Slow", sdg.FormatTable, "", sdg.Bag(sdg.Unknown))
	if err := eng.Internal().RegisterSource(desc, &slowSource{name: "Slow"}); err != nil {
		t.Fatal(err)
	}
	return serve.NewServer(serve.NewService(eng, nil, cfg))
}

func TestStreamTimeoutTrailer(t *testing.T) {
	srv := newSlowStreamServer(t, serve.Config{})
	body, _ := json.Marshal(map[string]any{
		"query":      "for { s <- Slow } yield bag s.x",
		"timeout_ms": 50,
	})
	req := httptestNewRequest(t, srv, "/stream", body)
	if req.status == http.StatusOK {
		// Mid-stream termination: the last line must be an error record.
		lines := strings.Split(strings.TrimSpace(req.body), "\n")
		last := lines[len(lines)-1]
		var trailer map[string]any
		if err := json.Unmarshal([]byte(last), &trailer); err != nil {
			t.Fatalf("bad trailer %q: %v", last, err)
		}
		if _, ok := trailer["error"]; !ok {
			t.Fatalf("stream ended without error trailer: %q", last)
		}
		if s, ok := trailer["status"].(float64); !ok || (int(s) != 504 && int(s) != 499) {
			t.Fatalf("trailer status = %v, want 504 or 499", trailer["status"])
		}
	} else if req.status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 200 (trailer) or 504 (pre-stream)", req.status)
	}
}

type recordedResponse struct {
	status int
	body   string
}

// httptestNewRequest posts against the handler directly (no network) so
// mid-stream behaviour is observable deterministically.
func httptestNewRequest(t *testing.T, srv *serve.Server, path string, body []byte) recordedResponse {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), "POST", path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return recordedResponse{status: rec.code, body: rec.buf.String()}
}

// recorder is a minimal ResponseWriter capturing status and body.
type recorder struct {
	code int
	hdr  http.Header
	buf  bytes.Buffer
}

func newRecorder() *recorder { return &recorder{code: http.StatusOK, hdr: http.Header{}} }

func (r *recorder) Header() http.Header         { return r.hdr }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(b []byte) (int, error) { return r.buf.Write(b) }
func (r *recorder) Flush()                      {}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	// Serve a query so the counters move.
	status, _ := postRaw(t, ts.URL, "/query", map[string]any{
		"query": "for { p <- Patients } yield count p",
	})
	if status != http.StatusOK {
		t.Fatalf("query status %d", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"# TYPE vida_queries_total counter",
		"# TYPE vida_serve_in_flight gauge",
		"vida_result_cache_misses_total",
		"# TYPE vida_serve_queue_depth gauge",
		"# TYPE vida_serve_queue_wait_seconds histogram",
		`vida_serve_queue_wait_seconds_bucket{le="+Inf"}`,
		"vida_serve_queue_wait_seconds_count",
		"vida_memory_query_kills_total",
		"vida_memory_harvest_skips_total",
		"vida_panics_recovered_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
	// queries_total must be at least the one we ran.
	var n int64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "vida_queries_total ") {
			fmt.Sscanf(line, "vida_queries_total %d", &n)
		}
	}
	if n < 1 {
		t.Fatalf("vida_queries_total = %d, want >= 1", n)
	}
}

func TestStreamRejectedWhenSaturated(t *testing.T) {
	// MaxQueue < 0 restores fail-fast admission: with the only slot held
	// by the stream, the query below is shed immediately instead of
	// queueing for it.
	srv := newSlowStreamServer(t, serve.Config{MaxInFlight: 1, MaxQueue: -1, DefaultTimeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the only slot with an open stream over the slow source.
	body, _ := json.Marshal(map[string]any{"query": "for { s <- Slow } yield bag s.x"})
	resp, err := http.Post(ts.URL+"/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("no first row from held stream: %v", err)
	}
	// While the stream is open, another query is rejected with 429.
	status, _ := postRaw(t, ts.URL, "/query", map[string]any{
		"query": "for { g <- Genetics } yield count g",
	})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 while stream holds the slot", status)
	}
}
