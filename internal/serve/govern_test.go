package serve_test

// Tests for the resource-governance layer: queued admission over HTTP,
// Retry-After on sheds, timeout_ms = 0 semantics, and memory-budget
// failures surfacing as 507.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"vida"
	"vida/internal/core"
	"vida/internal/sdg"
	"vida/internal/serve"
)

// holdSlot opens a stream over the Slow source against ts and returns
// after the first row arrived (the admission slot is now held); the
// returned func closes the stream, releasing the slot.
func holdSlot(t *testing.T, ts *httptest.Server) func() {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": "for { s <- Slow } yield bag s.x"})
	resp, err := http.Post(ts.URL+"/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if _, err := bufio.NewReader(resp.Body).ReadBytes('\n'); err != nil {
		resp.Body.Close()
		t.Fatalf("no first row from held stream: %v", err)
	}
	return func() { resp.Body.Close() }
}

// TestShedCarriesRetryAfter: a 429 response names when to come back.
func TestShedCarriesRetryAfter(t *testing.T) {
	srv := newSlowStreamServer(t, serve.Config{MaxInFlight: 1, MaxQueue: -1, DefaultTimeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	release := holdSlot(t, ts)
	defer release()

	body, _ := json.Marshal(map[string]any{"query": "for { g <- Genetics } yield count g"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
}

// TestQueuedAdmissionOutlivesSaturation: with queueing on (the default),
// a request arriving while every slot is busy waits instead of bouncing,
// and completes once the slot frees.
func TestQueuedAdmissionOutlivesSaturation(t *testing.T) {
	srv := newSlowStreamServer(t, serve.Config{MaxInFlight: 1, DefaultTimeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	release := holdSlot(t, ts)

	done := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(map[string]any{"query": "for { g <- Genetics } yield count g"})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()

	// The query must be parked in the queue, not rejected: give it a
	// moment to reach the queue, then free the slot.
	select {
	case status := <-done:
		t.Fatalf("query returned %d while the slot was held; expected it to queue", status)
	case <-time.After(200 * time.Millisecond):
	}
	release()
	select {
	case status := <-done:
		if status != http.StatusOK {
			t.Fatalf("queued query finished with %d, want 200", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued query never completed after the slot freed")
	}
}

// TestTimeoutZeroMeansDefault: timeout_ms = 0 (or omitted) applies the
// server default on every endpoint, rather than meaning "no timeout".
func TestTimeoutZeroMeansDefault(t *testing.T) {
	srv := newSlowStreamServer(t, serve.Config{DefaultTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		endpoint string
		query    string
	}{
		{"/query", "for { s <- Slow } yield count s"},
		{"/sql", "SELECT COUNT(*) FROM Slow"},
	} {
		start := time.Now()
		status, body := postRaw(t, ts.URL, tc.endpoint, map[string]any{
			"query": tc.query, "timeout_ms": 0,
		})
		if status != http.StatusGatewayTimeout {
			t.Fatalf("%s with timeout_ms=0: status %d (%s), want 504 from the default timeout", tc.endpoint, status, body)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s with timeout_ms=0 ran %v — default timeout not applied", tc.endpoint, elapsed)
		}
	}

	// /stream: the default deadline kills the slow stream mid-flight
	// (trailer carries 504) or before the first row.
	status, body := postRaw(t, ts.URL, "/stream", map[string]any{
		"query": "for { s <- Slow } yield bag s.x", "timeout_ms": 0,
	})
	if status == http.StatusOK {
		lines := strings.Split(strings.TrimSpace(string(body)), "\n")
		var trailer map[string]any
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
			t.Fatalf("bad trailer: %v", err)
		}
		if s, _ := trailer["status"].(float64); int(s) != http.StatusGatewayTimeout {
			t.Fatalf("stream trailer status = %v, want 504", trailer["status"])
		}
	} else if status != http.StatusGatewayTimeout {
		t.Fatalf("stream status = %d, want 200+trailer or 504", status)
	}

	// Go API: timeout 0 on Service.Query means the same default.
	eng := newTestEngine(t, nil)
	svc := serve.NewService(eng, nil, serve.Config{DefaultTimeout: 100 * time.Millisecond})
	defer svc.Close()
	desc := sdg.DefaultDescription("Slow", sdg.FormatTable, "", sdg.Bag(sdg.Unknown))
	if err := eng.Internal().RegisterSource(desc, &slowSource{name: "Slow"}); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Query(context.Background(), "for { s <- Slow } yield count s", nil, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Query(timeout=0) err = %v, want DeadlineExceeded from the default", err)
	}
}

// TestMemoryBudgetMapsTo507: a query killed by its memory budget is a
// typed failure — HTTP 507 — and the engine keeps serving afterwards.
func TestMemoryBudgetMapsTo507(t *testing.T) {
	// A per-query budget far below what the join build side needs.
	eng := newTestEngine(t, nil, vida.WithQueryMemoryBudget(2<<10))
	svc := serve.NewService(eng, nil, serve.Config{})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()

	status, body := postRaw(t, ts.URL, "/query", map[string]any{
		"query": "for { p <- Patients, g <- Genetics, p.id = g.id } yield count p",
	})
	if status != http.StatusInsufficientStorage {
		t.Fatalf("join under 2KiB budget: status %d (%s), want 507", status, body)
	}
	if !strings.Contains(string(body), "memory budget") {
		t.Fatalf("507 body does not name the budget: %s", body)
	}

	// The kill was query-scoped: a query that stays inside the budget
	// still answers.
	status, body = postRaw(t, ts.URL, "/query", map[string]any{
		"query": "for { p <- Patients } yield count p",
	})
	if status != http.StatusOK {
		t.Fatalf("engine unusable after memory kill: status %d (%s)", status, body)
	}

	// And the typed error is visible at the Go API.
	_, err := svc.Query(context.Background(), "for { p <- Patients, g <- Genetics, p.id = g.id } yield count p", nil, 0)
	if !errors.Is(err, core.ErrMemoryBudget) {
		t.Fatalf("err = %v, want core.ErrMemoryBudget", err)
	}
}

// TestJoinBudget507ReleasesSlot: a join killed by its memory budget at
// MaxInFlight=1 with queueing disabled must release its execution slot
// — a leaked slot would turn every follow-up into an instant 429 — and
// a smaller join that fits the budget then succeeds, with no state
// poisoned by the aborted build.
func TestJoinBudget507ReleasesSlot(t *testing.T) {
	eng := newTestEngine(t, nil, vida.WithQueryMemoryBudget(2<<10))
	svc := serve.NewService(eng, nil, serve.Config{MaxInFlight: 1, MaxQueue: -1})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()

	bigJoin := "for { p <- Patients, g <- Genetics, p.id = g.id } yield count p"
	status, body := postRaw(t, ts.URL, "/query", map[string]any{"query": bigJoin})
	if status != http.StatusInsufficientStorage {
		t.Fatalf("join under 2KiB budget: status %d (%s), want 507", status, body)
	}

	// The kill released the only execution slot.
	if st := svc.StatsSnapshot(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d after 507, want 0 (leaked slot)", st.InFlight)
	}

	// A join whose build side compacts down to a handful of rows stays
	// inside the same budget; with MaxInFlight=1 and fail-fast sheds,
	// its 200 doubles as proof the slot came back.
	smallJoin := "for { p <- Patients, g <- Genetics, p.id = g.id, p.id < 5, g.id < 5 } yield count p"
	status, body = postRaw(t, ts.URL, "/query", map[string]any{"query": smallJoin})
	if status != http.StatusOK {
		t.Fatalf("small join after 507: status %d (%s), want 200", status, body)
	}

	// No poisoned cache: a plain scan of the build side still answers
	// with the full table, and the oversized join fails the same way
	// again (deterministically, not with some corrupted-state error).
	status, body = postRaw(t, ts.URL, "/query", map[string]any{
		"query": "for { g <- Genetics } yield count g",
	})
	if status != http.StatusOK || !strings.Contains(string(body), "700") {
		t.Fatalf("build-side scan after 507: status %d (%s)", status, body)
	}
	status, body = postRaw(t, ts.URL, "/query", map[string]any{"query": bigJoin})
	if status != http.StatusInsufficientStorage {
		t.Fatalf("repeat oversized join: status %d (%s), want 507 again", status, body)
	}
	if st := svc.StatsSnapshot(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d at end, want 0", st.InFlight)
	}
}
