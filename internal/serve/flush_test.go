package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vida/internal/sdg"
	"vida/internal/serve"
	"vida/internal/values"
	"vida/internal/vec"
)

// trickleSource emits a first small batch immediately, then stalls for
// pause before emitting the rest — the shape of a cold scan with sparse
// matches. It implements the batch contract so the pipeline sees the
// early rows as their own batch.
type trickleSource struct {
	name  string
	first int
	rest  int
	pause time.Duration
}

func (s *trickleSource) Name() string { return s.name }

func (s *trickleSource) row(i int) values.Value {
	return values.NewRecord(values.Field{Name: "x", Val: values.NewInt(int64(i))})
}

func (s *trickleSource) Iterate(fields []string, yield func(values.Value) error) error {
	for i := 0; i < s.first; i++ {
		if err := yield(s.row(i)); err != nil {
			return err
		}
	}
	time.Sleep(s.pause)
	for i := 0; i < s.rest; i++ {
		if err := yield(s.row(s.first + i)); err != nil {
			return err
		}
	}
	return nil
}

// IterateBatches implements jit.BatchSource: one early batch, a long
// stall, then the rest.
func (s *trickleSource) IterateBatches(fields []string, batchSize int, yield func(*vec.Batch) error) error {
	emit := func(lo, n int) error {
		b := vec.New(len(fields))
		for i := 0; i < n; i++ {
			r := s.row(lo + i)
			for c, f := range fields {
				fv, _ := r.Get(f)
				b.Cols[c].AppendValue(fv)
			}
			b.N++
		}
		return yield(b)
	}
	if err := emit(0, s.first); err != nil {
		return err
	}
	time.Sleep(s.pause)
	return emit(s.first, s.rest)
}

// TestStreamFlushesOnBatchBoundaries is the regression test for the
// flush-per-1024-rows bug: a trickling producer's first rows must reach
// the HTTP client while the scan is still running, not after 1024 rows
// or end-of-stream.
func TestStreamFlushesOnBatchBoundaries(t *testing.T) {
	const pause = 3 * time.Second
	eng := newTestEngine(t, nil)
	desc := sdg.DefaultDescription("Trickle", sdg.FormatTable, "",
		sdg.Bag(sdg.Record(sdg.Attr{Name: "x", Type: sdg.Int})))
	src := &trickleSource{name: "Trickle", first: 3, rest: 5, pause: pause}
	if err := eng.Internal().RegisterSource(desc, src); err != nil {
		t.Fatal(err)
	}
	svc := serve.NewService(eng, nil, serve.Config{})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"query": "for { s <- Trickle } yield bag (x := s.x)"})
	start := time.Now()
	resp, err := http.Post(ts.URL+"/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	r := bufio.NewReader(resp.Body)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading first row: %v", err)
	}
	firstRow := time.Since(start)
	if firstRow >= pause {
		t.Fatalf("first row took %v — buffered rows waited out the producer stall (%v)", firstRow, pause)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(line)), &rec); err != nil {
		t.Fatalf("bad first line %q: %v", line, err)
	}
	if _, ok := rec["x"]; !ok {
		t.Fatalf("first line is not a row: %q", line)
	}
	// Drain the rest: the stream still completes with the done trailer.
	var last string
	for {
		l, err := r.ReadString('\n')
		if err != nil {
			break
		}
		if strings.TrimSpace(l) != "" {
			last = strings.TrimSpace(l)
		}
	}
	var trailer map[string]any
	if err := json.Unmarshal([]byte(last), &trailer); err != nil {
		t.Fatalf("bad trailer %q: %v", last, err)
	}
	if done, _ := trailer["done"].(bool); !done {
		t.Fatalf("missing done trailer: %q", last)
	}
	if n, _ := trailer["rows"].(float64); int(n) != 8 {
		t.Fatalf("trailer rows = %v, want 8", trailer["rows"])
	}
}

// TestOrderByLimitOverHTTP covers the ranked-query acceptance path for
// the HTTP surfaces: POST /sql returns ordered JSON, POST /stream emits
// the same rows in the same order as NDJSON.
func TestOrderByLimitOverHTTP(t *testing.T) {
	eng := newTestEngine(t, nil)
	svc := serve.NewService(eng, nil, serve.Config{})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()

	const sql = `SELECT id, age FROM Patients ORDER BY age DESC, id LIMIT 5`
	body, _ := json.Marshal(map[string]any{"query": sql})
	resp, err := http.Post(ts.URL+"/sql", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sql status = %d", resp.StatusCode)
	}
	var out struct {
		Result []map[string]any `json:"result"`
		Rows   int              `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Rows != 5 || len(out.Result) != 5 {
		t.Fatalf("/sql rows = %d (%d results)", out.Rows, len(out.Result))
	}
	prevAge := int(1 << 30)
	prevID := -1
	var sqlIDs []int
	for _, r := range out.Result {
		age := int(r["age"].(float64))
		id := int(r["id"].(float64))
		if age > prevAge || (age == prevAge && id <= prevID) {
			t.Fatalf("/sql rows out of order: %v", out.Result)
		}
		prevAge, prevID = age, id
		sqlIDs = append(sqlIDs, id)
	}

	streamBody, _ := json.Marshal(map[string]any{"query": sql, "sql": true})
	sresp, err := http.Post(ts.URL+"/stream", "application/json", bytes.NewReader(streamBody))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var streamIDs []int
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if done, ok := rec["done"].(bool); ok && done {
			break
		}
		if errMsg, ok := rec["error"]; ok {
			t.Fatalf("stream error: %v", errMsg)
		}
		streamIDs = append(streamIDs, int(rec["id"].(float64)))
	}
	if len(streamIDs) != len(sqlIDs) {
		t.Fatalf("/stream rows = %d, /sql rows = %d", len(streamIDs), len(sqlIDs))
	}
	for i := range streamIDs {
		if streamIDs[i] != sqlIDs[i] {
			t.Fatalf("/stream order %v differs from /sql order %v", streamIDs, sqlIDs)
		}
	}
}
