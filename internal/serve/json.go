package serve

import "vida"

// appendValueJSON renders a query result as JSON (record field order
// preserved, non-finite floats become null); the rendering lives on
// vida.Value so the sqldriver and HTTP layers agree byte-for-byte.
func appendValueJSON(dst []byte, v vida.Value) []byte {
	return v.AppendJSON(dst)
}
