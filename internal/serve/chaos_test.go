package serve_test

// The chaos suite: randomized fault schedules over every registered
// faultinject point while a mixed request load (queries, SQL, streams,
// short deadlines, client disconnects) hammers the service. The point is
// not that queries succeed — most are supposed to fail — but that the
// containment invariants hold afterwards:
//
//   - no crash: every request gets an HTTP response (or a client-side
//     cancellation the client itself caused);
//   - no goroutine leak: engine, pool and server wind down to the
//     pre-test goroutine count;
//   - no admission-slot leak: in-flight and queue depth return to zero
//     and the full capacity is usable again;
//   - no cache poisoning: results after faults are cleared match the
//     fault-free baseline.
//
// Run under -race in CI (the chaos job), where the schedules double as a
// concurrency stress.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"vida"
	"vida/internal/faultinject"
	"vida/internal/sched"
	"vida/internal/serve"
)

// chaosQueries are the baseline workload: one CSV aggregation, one CSV
// bag with a predicate, one JSON scan, one SQL join-free aggregate, and
// a hash join (so the jit.join_build_stall point is exercised by the
// armed schedules).
var chaosQueries = []struct {
	endpoint string
	query    string
}{
	{"/query", "for { p <- Patients, p.age > 40 } yield count p"},
	{"/query", "for { p <- Patients, p.age > 70 } yield bag p.id"},
	{"/query", "for { r <- BrainRegions } yield count r"},
	{"/sql", "SELECT COUNT(*) FROM Genetics"},
	{"/query", "for { p <- Patients, g <- Genetics, p.id = g.id } yield count p"},
}

// armChaosSchedule arms a randomized, seed-reproducible fault schedule
// across every registered point.
func armChaosSchedule(rng *rand.Rand) {
	injected := faultinject.Always(faultinject.ErrInjected)
	panicky := faultinject.Fault(func() error { panic("chaos: injected panic") })
	for _, point := range faultinject.Points() {
		if point == faultinject.AllocSpike {
			// Value point: spike every harvest reservation by up to 1 MiB.
			faultinject.SetValue(point, int64(rng.Intn(1<<20)))
			continue
		}
		switch rng.Intn(6) {
		case 0:
			// Leave this point clean this round.
		case 1:
			faultinject.Set(point, faultinject.Prob(0.3, rng.Int63(), injected))
		case 2:
			faultinject.Set(point, faultinject.After(int64(rng.Intn(20)), injected))
		case 3:
			faultinject.Set(point, faultinject.Sleep(time.Duration(rng.Intn(3))*time.Millisecond))
		case 4:
			faultinject.Set(point, faultinject.Chain(
				faultinject.Sleep(time.Duration(rng.Intn(2))*time.Millisecond),
				faultinject.Prob(0.2, rng.Int63(), injected),
			))
		case 5:
			faultinject.Set(point, faultinject.Prob(0.05, rng.Int63(), panicky))
		}
	}
}

// chaosPost issues one request, tolerating transport errors only when
// the client itself cancelled.
func chaosPost(ctx context.Context, client *http.Client, url, endpoint string, body map[string]any) (int, []byte, error) {
	raw, _ := json.Marshal(body)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+endpoint, bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode, data, nil
}

func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	defer faultinject.Reset()
	beforeGoroutines := runtime.NumGoroutine()

	pool := sched.NewPool(4)
	eng := newTestEngine(t, pool,
		vida.WithMemoryBudget(64<<20),
		vida.WithQueryMemoryBudget(32<<20),
	)
	svc := serve.NewService(eng, pool, serve.Config{
		MaxInFlight:    4,
		MaxQueue:       8,
		DefaultTimeout: 10 * time.Second,
	})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	client := ts.Client()

	// Fault-free baseline, recorded before any fault is armed.
	baseline := make([]string, len(chaosQueries))
	for i, q := range chaosQueries {
		status, body, err := chaosPost(context.Background(), client, ts.URL, q.endpoint, map[string]any{"query": q.query})
		if err != nil || status != http.StatusOK {
			t.Fatalf("baseline %q: status %d err %v body %s", q.query, status, err, body)
		}
		baseline[i] = string(body)
	}

	for _, seed := range []int64{1, 7, 42, 1337} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			armChaosSchedule(rng)

			var wg sync.WaitGroup
			for i := 0; i < 60; i++ {
				q := chaosQueries[rng.Intn(len(chaosQueries))]
				mode := rng.Intn(4)
				timeoutMS := []int64{0, 0, 50, 500}[rng.Intn(4)]
				cancelAfter := time.Duration(rng.Intn(20)) * time.Millisecond
				wg.Add(1)
				go func(q struct{ endpoint, query string }, mode int, timeoutMS int64, cancelAfter time.Duration) {
					defer wg.Done()
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if mode == 2 {
						ctx, cancel = context.WithTimeout(ctx, cancelAfter)
					}
					defer cancel()
					body := map[string]any{"query": q.query, "timeout_ms": timeoutMS}
					endpoint := q.endpoint
					if mode == 3 {
						endpoint = "/stream"
						body["sql"] = q.endpoint == "/sql"
					}
					status, _, err := chaosPost(ctx, client, ts.URL, endpoint, body)
					if err != nil {
						if ctx.Err() != nil {
							return // our own cancellation; not a server fault
						}
						t.Errorf("%s %q: transport error with live client: %v", endpoint, q.query, err)
						return
					}
					switch status {
					case http.StatusOK, http.StatusTooManyRequests, statusClientClosedRequest,
						http.StatusInternalServerError, http.StatusGatewayTimeout,
						http.StatusInsufficientStorage, http.StatusServiceUnavailable:
					default:
						t.Errorf("%s %q: unexpected status %d", endpoint, q.query, status)
					}
				}(struct{ endpoint, query string }{q.endpoint, q.query}, mode, timeoutMS, cancelAfter)
			}
			wg.Wait()
			faultinject.Reset()

			// Admission slots are all released once the dust settles.
			waitForCond(t, 5*time.Second, func() bool {
				st := svc.StatsSnapshot()
				return st.InFlight == 0 && st.QueueDepth == 0
			})

			// The cache was never poisoned: with faults cleared, every
			// baseline query answers exactly what it answered before chaos.
			for i, q := range chaosQueries {
				status, body, err := chaosPost(context.Background(), client, ts.URL, q.endpoint, map[string]any{"query": q.query})
				if err != nil || status != http.StatusOK {
					t.Fatalf("post-chaos %q: status %d err %v body %s", q.query, status, err, body)
				}
				if got := stripElapsed(t, body); got != stripElapsed(t, []byte(baseline[i])) {
					t.Fatalf("post-chaos %q: result drifted\n  before: %s\n  after:  %s", q.query, baseline[i], body)
				}
			}

			// The full capacity is usable: MaxInFlight concurrent queries
			// all admit and succeed.
			var cwg sync.WaitGroup
			for i := 0; i < 4; i++ {
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					status, body, err := chaosPost(context.Background(), client, ts.URL, "/query", map[string]any{
						"query": "for { p <- Patients } yield count p",
					})
					if err != nil || status != http.StatusOK {
						t.Errorf("capacity probe: status %d err %v body %s", status, err, body)
					}
				}()
			}
			cwg.Wait()
		})
	}

	// Wind everything down in dependency order, then the goroutine count
	// must return to the pre-test baseline (no leaked producers, waiters
	// or workers).
	ts.Close()
	client.CloseIdleConnections()
	if err := svc.Close(); err != nil {
		t.Fatalf("service close: %v", err)
	}
	pool.Close()
	assertNoGoroutineLeak(t, beforeGoroutines)
}

// stripElapsed removes the timing field from a /query response so
// before/after comparisons see only the data.
func stripElapsed(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	delete(m, "elapsed_ms")
	delete(m, "cached")   // post-chaos repeats may legitimately hit the result cache
	delete(m, "query_id") // fresh per request by design
	out, _ := json.Marshal(m)
	return string(out)
}

const statusClientClosedRequest = 499

// waitForCond polls cond with a deadline.
func waitForCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertNoGoroutineLeak retries (goroutine teardown is asynchronous)
// before dumping all stacks and failing.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+3 { // slack for runtime/testing housekeeping
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d at start, %d now\n%s", baseline, n, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
