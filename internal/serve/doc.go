// Package serve turns a vida Engine into a concurrent query service.
// It is the serving tier the paper's vision implies but never builds:
// positional maps, semi-indexes and columnar caches amortize their build
// cost across a *stream* of concurrent clients, so the engine needs a
// front door that admits many queries at once without melting the
// machine. The package has three layers, composed bottom-up:
//
//   - Scheduling. Every engine behind a Service shares one morsel worker
//     pool (internal/sched): parallel scans submit morsels as jobs and
//     the pool's fixed GOMAXPROCS workers interleave the morsels of all
//     in-flight queries round-robin. N concurrent queries therefore run
//     on cores workers total — not N×cores goroutines — and a short
//     query makes progress while a long scan is running instead of
//     queuing behind it.
//
//   - Admission and sessions (Service). A bounded in-flight limit
//     (Config.MaxInFlight) plus a bounded FIFO admission queue
//     (Config.MaxQueue) govern the door: when every execution slot is
//     busy, a request waits in line until its deadline and is shed with
//     a BusyError (HTTP 429 + Retry-After, estimated from the observed
//     drain rate) only when the queue is full or its deadline cannot be
//     met while queued. MaxQueue < 0 restores the old fail-fast
//     behaviour. Admitted queries run under a
//     per-query timeout and the caller's cancellation context, threaded
//     through Engine.QueryCtx → the JIT executor → the batch sources, so
//     a cancelled query stops mid-scan and frees its pool workers. Two
//     session caches sit in front of the engine, both LRU and both
//     keyed on (query text, bind parameters, engine epoch): a
//     prepared-statement cache that skips the query frontend, and a
//     query-result cache that skips execution entirely, bounded by
//     entry count and by an approximate byte budget (a single huge
//     result cannot monopolize it). The epoch key makes invalidation
//     free — Refresh, registration changes and file-change detection
//     bump the engine epoch, orphaning every stale entry in place.
//     QueryRows opens a streaming cursor instead of a buffered result:
//     the admission slot is held for the stream's lifetime, so an open
//     cursor occupies capacity exactly like an executing query.
//
//   - HTTP front-end (Server). POST /query (comprehension queries),
//     POST /sql (SQL translated to comprehensions), POST /stream
//     (NDJSON rows flushed batch-at-a-time off the engine cursor, with
//     a done-or-error trailer record in band), POST /explain (plan
//     only; "analyze": true executes and attaches the span tree),
//     GET /catalog, GET /stats, GET /metrics (Prometheus text),
//     GET /explain (q/sql/analyze query params), GET /debug/queries
//     (the profile ring) and GET /healthz.
//     Results preserve record field order; /query, /sql and /stream all
//     accept a "params" field binding $1..$n (array) or $name (object).
//     /stream flushes at every cursor chunk boundary (with a 1024-row
//     backstop), so first-row latency over HTTP matches the cursor's
//     even for a slow, sparse producer. Shutdown drains: the HTTP
//     server stops accepting, then Engine.Close waits for in-flight
//     queries.
//
// ORDER BY / LIMIT / OFFSET queries serve through every endpoint:
// ranked results arrive as ordered arrays (/query, /sql) or ordered
// NDJSON lines (/stream — the engine's streaming top-k buffers only its
// O(offset+limit) heap before the first ordered row is written; a bare
// LIMIT cancels the scan's remaining morsels as soon as enough rows
// have been produced, so the admission slot frees early too). LIMIT $1
// keeps the prepared-statement cache warm across different bounds.
//
// # Request lifecycle and failure taxonomy
//
// Every query request moves through admit → queue → execute → respond:
//
//   - admit: a result-cache hit responds immediately and never touches
//     the admission queue — repeats stay cheap exactly when the engine
//     is saturated. The request's timeout starts here (timeout_ms = 0,
//     or anything beyond the configured bound, means "use the server
//     default"), so time spent queued counts against the deadline.
//   - queue: with no free execution slot the request waits in FIFO
//     order. It is shed — never silently dropped — when the queue is
//     full or its deadline cannot be met at the observed drain rate.
//   - execute: the query runs under its context; cancellation reaches
//     mid-scan, and memory reservations are charged against the
//     per-query and global budgets as accumulation grows.
//   - respond: success is 200; failures map onto a fixed taxonomy.
//
// Failure taxonomy (HTTP status ← error shape):
//
//	429  shed at admission (ErrBusy / *BusyError, Retry-After attached)
//	499  client went away (context.Canceled)
//	504  deadline exceeded during execution (context.DeadlineExceeded)
//	507  memory budget exceeded (core.ErrMemoryBudget)
//	503  engine closed / shutting down (core.ErrClosed)
//	400  bad query, params or request body (BadQueryError, ParamError)
//	500  execution failure, including panics contained at the pool,
//	     stream-producer and HTTP-handler barriers
//
// A deadline that expires while still queued is a shed (429), not a 504:
// the query never started, so retrying later is the right client move.
//
// # Observability
//
// Every executed query runs with an internal/trace span recorder armed
// on its context; the settled tree covers queue wait, the frontend
// (parse/typecheck/optimize, prepared-cache hit/miss), per-source scans
// (raw vs cache, rows/bytes/batches, positional-map and semi-index
// build events, harvest outcome) and the fold (joins, parallel merges).
// The tree surfaces three ways, correlated by the query ID every
// response carries in the X-Vida-Query-Id header:
//
//   - POST /explain with "analyze": true executes the query — bypassing
//     the result cache in both directions, so it always measures real
//     work — and returns {query_id, plan, rows, elapsed_ms, spans}.
//   - GET /debug/queries serves the fixed-size ring of completed query
//     profiles (Config.ProfileEntries); queries slower than
//     Config.SlowQueryThreshold are also logged via log/slog with
//     per-phase timings.
//   - GET /metrics rolls each tree into per-phase latency histograms
//     (vida_query_phase_seconds{phase="queue"|"compile"|"scan"|"fold"};
//     the fold phase is the non-scan residue of the pull pipeline) next
//     to per-endpoint request histograms (vida_http_request_seconds).
//     The scalar exposition is descriptor-driven (metrics.go): every
//     /stats field maps onto exactly one metric and a parity test
//     asserts the bijection.
//
// Result-cache hits still get a fresh query ID and a profile-ring entry
// (cached: true), but no spans — nothing executed.
//
// # Memory governance
//
// vida.WithMemoryBudget bounds the bytes all queries may hold at once;
// vida.WithQueryMemoryBudget bounds each query. Degradation is staged:
// under global pressure (≥3/4 used) the engine first stops harvesting
// columnar caches from cold scans (queries still answer, they just stop
// investing in future speed); only a query that itself exceeds a budget
// is aborted, with the typed core.ErrMemoryBudget → 507. Budget
// accounting is approximate and batch-granular — it exists to convert
// "the process OOMs" into "one query gets a clean error".
package serve
