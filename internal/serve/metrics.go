package serve

import (
	"fmt"
	"time"

	"vida/internal/core"
	"vida/internal/sched"
)

// This file declares the /metrics exposition as data. Every scalar the
// service reports on GET /stats maps onto exactly one Prometheus metric
// through metricDefs (or histogramStatMetrics for fields that are
// derived views of a histogram); a cross-check test asserts the mapping
// is a bijection, so /stats and /metrics cannot silently diverge again.

// statsView is one coherent snapshot of every counter source read by
// /stats and /metrics.
type statsView struct {
	svc     Stats
	eng     core.Stats
	pool    sched.Stats
	hasPool bool
}

// metricDef maps one scalar from the /stats document onto a metric.
// stat is the flattened JSON path of the field in GET /stats
// ("service.admitted", "engine.Cache.Hits", "scheduler.workers");
// stat == "" marks a derived metric aggregated from several fields,
// with no single /stats counterpart.
type metricDef struct {
	name  string
	kind  string // "counter" or "gauge"
	help  string
	stat  string
	sched bool // only meaningful when a scheduler pool is attached
	value func(v *statsView) int64
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

var metricDefs = []metricDef{
	// Engine: query and scan activity.
	{"vida_queries_total", "counter", "Queries executed by the engine.", "engine.Queries",
		false, func(v *statsView) int64 { return v.eng.Queries }},
	{"vida_queries_cache_served_total", "counter", "Queries whose scans were all served by the data caches.", "engine.QueriesFromCache",
		false, func(v *statsView) int64 { return v.eng.QueriesFromCache }},
	{"vida_queries_raw_touched_total", "counter", "Queries that touched at least one raw file.", "engine.QueriesTouchedRaw",
		false, func(v *statsView) int64 { return v.eng.QueriesTouchedRaw }},
	{"vida_raw_scans_total", "counter", "Scans that touched raw files.", "engine.RawScans",
		false, func(v *statsView) int64 { return v.eng.RawScans }},
	{"vida_cache_scans_total", "counter", "Scans served from the data caches.", "engine.CacheScans",
		false, func(v *statsView) int64 { return v.eng.CacheScans }},
	{"vida_auxiliary_bytes", "gauge", "Bytes in positional maps and semi-indexes.", "engine.AuxiliaryBytes",
		false, func(v *statsView) int64 { return v.eng.AuxiliaryBytes }},

	// Engine: data-cache internals.
	{"vida_data_cache_hits_total", "counter", "Data cache lookups that hit.", "engine.Cache.Hits",
		false, func(v *statsView) int64 { return v.eng.Cache.Hits }},
	{"vida_data_cache_misses_total", "counter", "Data cache lookups that missed.", "engine.Cache.Misses",
		false, func(v *statsView) int64 { return v.eng.Cache.Misses }},
	{"vida_data_cache_evictions_total", "counter", "Data cache entries evicted under the byte budget.", "engine.Cache.Evictions",
		false, func(v *statsView) int64 { return v.eng.Cache.Evictions }},
	{"vida_data_cache_insertions_total", "counter", "Data cache entries installed (harvests and promotions).", "engine.Cache.Insertions",
		false, func(v *statsView) int64 { return v.eng.Cache.Insertions }},
	{"vida_cache_bytes_used", "gauge", "Bytes resident in the data caches.", "engine.Cache.BytesUsed",
		false, func(v *statsView) int64 { return v.eng.Cache.BytesUsed }},
	{"vida_cache_bytes_limit", "gauge", "Data cache byte budget (0 = unlimited).", "engine.Cache.BytesLimit",
		false, func(v *statsView) int64 { return v.eng.Cache.BytesLimit }},
	{"vida_cache_entries", "gauge", "Entries resident in the data caches.", "engine.Cache.Entries",
		false, func(v *statsView) int64 { return int64(v.eng.Cache.Entries) }},

	// Engine: encoded cache tier (dictionary/delta blocks + disk spill).
	{"vida_cache_hot_bytes", "gauge", "Bytes resident in the hot (decoded vector) cache tier.", "engine.Cache.HotBytes",
		false, func(v *statsView) int64 { return v.eng.Cache.HotBytes }},
	{"vida_cache_encoded_bytes", "gauge", "Bytes resident in the encoded cache tier.", "engine.Cache.EncodedBytes",
		false, func(v *statsView) int64 { return v.eng.Cache.EncodedBytes }},
	{"vida_cache_encodes_total", "counter", "Cache entries transitioned from hot vectors to encoded blocks.", "engine.Cache.Encodes",
		false, func(v *statsView) int64 { return v.eng.Cache.Encodes }},
	{"vida_cache_decoded_blocks_total", "counter", "Encoded cache blocks decoded on demand by scans.", "engine.Cache.DecodedBlocks",
		false, func(v *statsView) int64 { return v.eng.Cache.DecodedBlocks }},
	{"vida_cache_spill_writes_total", "counter", "Encoded cache entries spilled to the cache directory.", "engine.Cache.SpillWrites",
		false, func(v *statsView) int64 { return v.eng.Cache.SpillWrites }},
	{"vida_cache_rehydrated_blocks_total", "counter", "Encoded blocks rehydrated from spill files at startup.", "engine.Cache.RehydratedBlocks",
		false, func(v *statsView) int64 { return v.eng.Cache.RehydratedBlocks }},
	{"vida_cache_spill_corrupt_total", "counter", "Spill files quarantined as corrupt during rehydration.", "engine.Cache.SpillCorrupt",
		false, func(v *statsView) int64 { return v.eng.Cache.SpillCorrupt }},

	// Engine: memory governance.
	{"vida_memory_tracked_bytes", "gauge", "Bytes currently reserved against the global memory budget.", "engine.Memory.TrackedBytes",
		false, func(v *statsView) int64 { return v.eng.Memory.TrackedBytes }},
	{"vida_memory_budget_bytes", "gauge", "Global memory budget (0 = unbudgeted).", "engine.Memory.BudgetBytes",
		false, func(v *statsView) int64 { return v.eng.Memory.BudgetBytes }},
	{"vida_memory_query_kills_total", "counter", "Queries aborted for exceeding a memory budget.", "engine.Memory.QueryKills",
		false, func(v *statsView) int64 { return v.eng.Memory.QueryKills }},
	{"vida_memory_harvest_skips_total", "counter", "Cache harvests shed under memory pressure.", "engine.Memory.HarvestSkips",
		false, func(v *statsView) int64 { return v.eng.Memory.HarvestSkips }},
	{"vida_memory_under_pressure", "gauge", "Whether the engine is above its memory high-water mark (0/1).", "engine.Memory.UnderPressure",
		false, func(v *statsView) int64 { return b2i(v.eng.Memory.UnderPressure) }},

	// Engine: JIT kernel staging (vectorized kernels vs boxed fallbacks).
	{"vida_kernel_stages_vectorized_total", "counter", "Pipeline stages compiled to vectorized kernels.", "engine.KernelStagesVectorized",
		false, func(v *statsView) int64 { return v.eng.KernelStagesVectorized }},
	{"vida_kernel_stages_boxed_total", "counter", "Pipeline stages that fell back to row-wise boxed execution.", "engine.KernelStagesBoxed",
		false, func(v *statsView) int64 { return v.eng.KernelStagesBoxed }},

	// Engine: grouped hash aggregation (single-pass GROUP BY folds).
	{"vida_group_folds_total", "counter", "Grouped hash-aggregation folds completed.", "engine.GroupFolds",
		false, func(v *statsView) int64 { return v.eng.GroupFolds }},
	{"vida_groups_built_total", "counter", "Distinct groups built across all grouped folds.", "engine.GroupsBuilt",
		false, func(v *statsView) int64 { return v.eng.GroupsBuilt }},
	{"vida_group_table_max_bytes", "gauge", "Largest single group table observed (bytes).", "engine.GroupTableMaxBytes",
		false, func(v *statsView) int64 { return v.eng.GroupTableMaxBytes }},
	{"vida_group_partial_merges_total", "counter", "Morsel-parallel group partials merged into root tables.", "engine.GroupPartialMerges",
		false, func(v *statsView) int64 { return v.eng.GroupPartialMerges }},

	// Engine: partitioned hash joins (morsel-parallel build and probe).
	{"vida_join_folds_total", "counter", "Hash-join build tables sealed.", "engine.JoinFolds",
		false, func(v *statsView) int64 { return v.eng.JoinFolds }},
	{"vida_join_build_rows_total", "counter", "Build-side entries indexed across all hash joins.", "engine.JoinBuildRows",
		false, func(v *statsView) int64 { return v.eng.JoinBuildRows }},
	{"vida_join_probe_rows_total", "counter", "Rows emitted by hash-join probes.", "engine.JoinProbeRows",
		false, func(v *statsView) int64 { return v.eng.JoinProbeRows }},
	{"vida_join_table_max_bytes", "gauge", "Largest single sealed join table observed (bytes).", "engine.JoinTableMaxBytes",
		false, func(v *statsView) int64 { return v.eng.JoinTableMaxBytes }},

	// Service: admission and request outcomes.
	{"vida_serve_admitted_total", "counter", "Requests admitted past the in-flight gate.", "service.admitted",
		false, func(v *statsView) int64 { return v.svc.Admitted }},
	{"vida_serve_rejected_total", "counter", "Requests shed with 429 at the admission gate.", "service.rejected",
		false, func(v *statsView) int64 { return v.svc.Rejected }},
	{"vida_serve_completed_total", "counter", "Requests completed successfully.", "service.completed",
		false, func(v *statsView) int64 { return v.svc.Completed }},
	{"vida_serve_failed_total", "counter", "Requests that failed.", "service.failed",
		false, func(v *statsView) int64 { return v.svc.Failed }},
	{"vida_serve_cancelled_total", "counter", "Requests cancelled or timed out.", "service.cancelled",
		false, func(v *statsView) int64 { return v.svc.Cancelled }},
	{"vida_serve_in_flight", "gauge", "Queries executing or streaming right now.", "service.in_flight",
		false, func(v *statsView) int64 { return v.svc.InFlight }},
	{"vida_serve_queue_depth", "gauge", "Requests waiting in the admission queue right now.", "service.queue_depth",
		false, func(v *statsView) int64 { return v.svc.QueueDepth }},
	{"vida_serve_streams_total", "counter", "Streaming cursors opened via /stream.", "service.streams",
		false, func(v *statsView) int64 { return v.svc.Streams }},

	// Service: session caches and epoch.
	{"vida_result_cache_hits_total", "counter", "Result cache hits.", "service.result_cache_hits",
		false, func(v *statsView) int64 { return v.svc.ResultHits }},
	{"vida_result_cache_misses_total", "counter", "Result cache misses.", "service.result_cache_misses",
		false, func(v *statsView) int64 { return v.svc.ResultMisses }},
	{"vida_result_cache_bytes", "gauge", "Approximate bytes resident in the result cache.", "service.result_cache_bytes",
		false, func(v *statsView) int64 { return v.svc.ResultCacheBytes }},
	{"vida_prepared_cache_hits_total", "counter", "Prepared-statement cache hits.", "service.prepared_cache_hits",
		false, func(v *statsView) int64 { return v.svc.PreparedHits }},
	{"vida_prepared_cache_misses_total", "counter", "Prepared-statement cache misses.", "service.prepared_cache_misses",
		false, func(v *statsView) int64 { return v.svc.PreparedMisses }},
	{"vida_engine_epoch", "gauge", "Engine data epoch (bumped by refresh and registration changes).", "service.epoch",
		false, func(v *statsView) int64 { return v.svc.Epoch }},

	// Panic containment, per barrier plus the aggregate.
	{"vida_exec_panics_recovered_total", "counter", "Execution panics contained as query errors.", "engine.PanicsRecovered",
		false, func(v *statsView) int64 { return v.eng.PanicsRecovered }},
	{"vida_serve_handler_panics_total", "counter", "HTTP handler panics recovered.", "service.handler_panics",
		false, func(v *statsView) int64 { return v.svc.HandlerPanics }},
	{"vida_sched_panics_recovered_total", "counter", "Panics contained at the morsel scheduler barrier.", "scheduler.panics_recovered",
		true, func(v *statsView) int64 { return v.pool.PanicsRecovered }},
	{"vida_panics_recovered_total", "counter", "Panics contained at all goroutine barriers (pool, producer, handler).", "",
		false, func(v *statsView) int64 {
			return v.eng.PanicsRecovered + v.svc.HandlerPanics + v.pool.PanicsRecovered
		}},

	// Scheduler.
	{"vida_sched_workers", "gauge", "Morsel scheduler workers.", "scheduler.workers",
		true, func(v *statsView) int64 { return int64(v.pool.Workers) }},
	{"vida_sched_active_jobs", "gauge", "Jobs with undispatched morsels.", "scheduler.active_jobs",
		true, func(v *statsView) int64 { return int64(v.pool.ActiveJobs) }},
	{"vida_sched_jobs_total", "counter", "Scheduler jobs completed.", "scheduler.jobs_run",
		true, func(v *statsView) int64 { return v.pool.JobsRun }},
	{"vida_morsels_executed_total", "counter", "Morsels executed by the shared scheduler.", "scheduler.tasks_run",
		true, func(v *statsView) int64 { return v.pool.TasksRun }},
}

// histogramStatMetrics maps /stats fields that are derived views of a
// histogram onto the exposition series that carries the same number.
var histogramStatMetrics = map[string]string{
	"service.queue_waits":         "vida_serve_queue_wait_seconds_count",
	"service.queue_wait_total_ms": "vida_serve_queue_wait_seconds_sum",
}

// histogramFamilies lists the histogram metric families emitted next to
// the scalar descriptor table.
var histogramFamilies = []string{
	"vida_serve_queue_wait_seconds",
	"vida_http_request_seconds",
	"vida_query_phase_seconds",
}

// endpointOrder fixes the exposition order of the per-endpoint request
// histograms (map iteration would shuffle the output between scrapes).
var endpointOrder = []string{epQuery, epSQL, epStream, epExplain}

// appendHistHeader emits one histogram family's HELP/TYPE preamble.
func appendHistHeader(b []byte, name, help string) []byte {
	return fmt.Appendf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
}

// appendHistSeries emits one labeled series of a histogram family:
// cumulative buckets over the waitBuckets bounds, then sum and count.
func appendHistSeries(b []byte, name, labels string, cum []int64, sum time.Duration, count int64) []byte {
	prefix := labels
	if prefix != "" {
		prefix += ","
	}
	for i, ub := range waitBuckets {
		b = fmt.Appendf(b, "%s_bucket{%sle=\"%g\"} %d\n", name, prefix, ub.Seconds(), cum[i])
	}
	b = fmt.Appendf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, cum[len(cum)-1])
	if labels != "" {
		b = fmt.Appendf(b, "%s_sum{%s} %g\n", name, labels, sum.Seconds())
		b = fmt.Appendf(b, "%s_count{%s} %d\n", name, labels, count)
	} else {
		b = fmt.Appendf(b, "%s_sum %g\n", name, sum.Seconds())
		b = fmt.Appendf(b, "%s_count %d\n", name, count)
	}
	return b
}
