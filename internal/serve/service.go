package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vida"
	"vida/internal/core"
	"vida/internal/sched"
	"vida/internal/trace"
)

// ErrBusy is the sentinel matched (via errors.Is) by admission-shed
// failures; the HTTP layer maps it to 429 Too Many Requests. Concrete
// shed errors are *BusyError values carrying a Retry-After estimate.
var ErrBusy = errors.New("serve: too many in-flight queries")

// BadQueryError marks failures of the query frontend (syntax, type,
// translation): the request itself is at fault, so the HTTP layer maps
// it to 400 rather than 500.
type BadQueryError struct{ Err error }

func (e *BadQueryError) Error() string { return e.Err.Error() }

// Unwrap supports errors.Is/As through the wrapper.
func (e *BadQueryError) Unwrap() error { return e.Err }

// Config tunes the admission/session layer.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (default
	// 4×GOMAXPROCS). Requests beyond it wait in the admission queue.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot (default
	// 4×MaxInFlight; <0 disables queueing, restoring fail-fast 429s).
	// A full queue — or a deadline that cannot be met while queued —
	// sheds the request with a BusyError.
	MaxQueue int
	// DefaultTimeout bounds each query's execution; requests may shorten
	// it but never extend it (default 30s; <0 disables the bound and
	// lets requests pick any timeout).
	DefaultTimeout time.Duration
	// ResultCacheEntries bounds the query-result LRU by entry count
	// (default 256; <0 disables).
	ResultCacheEntries int
	// ResultCacheBytes bounds the query-result LRU by the approximate
	// in-memory size of the cached results (default 64 MiB; <0 disables
	// the byte budget, leaving only the entry bound). One enormous
	// result can no longer pin the memory of 256 of them.
	ResultCacheBytes int64
	// PreparedCacheEntries bounds the prepared-statement LRU (default
	// 256; <0 disables).
	PreparedCacheEntries int
	// ProfileEntries bounds the ring of completed query profiles served
	// at GET /debug/queries (default 128; <0 disables retention).
	ProfileEntries int
	// SlowQueryThreshold is the elapsed time above which a completed
	// query is logged through log/slog with its ID, endpoint and phase
	// breakdown (default 500ms; <0 disables slow-query logging).
	SlowQueryThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 4 * c.MaxInFlight
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.ResultCacheEntries == 0 {
		c.ResultCacheEntries = 256
	}
	if c.ResultCacheBytes == 0 {
		c.ResultCacheBytes = 64 << 20
	}
	if c.PreparedCacheEntries == 0 {
		c.PreparedCacheEntries = 256
	}
	switch {
	case c.ProfileEntries == 0:
		c.ProfileEntries = 128
	case c.ProfileEntries < 0:
		c.ProfileEntries = 0
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = 500 * time.Millisecond
	}
	return c
}

// Stats is a snapshot of service activity, reported by GET /stats next
// to the engine's own counters.
type Stats struct {
	Admitted         int64 `json:"admitted"`
	Rejected         int64 `json:"rejected"` // shed at admission (429)
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	Cancelled        int64 `json:"cancelled"`
	InFlight         int64 `json:"in_flight"`
	QueueDepth       int64 `json:"queue_depth"`       // waiting for a slot now
	QueueWaits       int64 `json:"queue_waits"`       // admissions observed by the wait histogram
	QueueWaitTotalMS int64 `json:"queue_wait_total_ms"`
	HandlerPanics    int64 `json:"handler_panics"` // HTTP handler panics recovered
	Streams          int64 `json:"streams"`
	ResultHits       int64 `json:"result_cache_hits"`
	ResultMisses     int64 `json:"result_cache_misses"`
	ResultCacheBytes int64 `json:"result_cache_bytes"`
	PreparedHits     int64 `json:"prepared_cache_hits"`
	PreparedMisses   int64 `json:"prepared_cache_misses"`
	Epoch            int64 `json:"epoch"`
}

// Service is the admission/session layer over one engine: bounded
// in-flight queries, per-query timeouts and cancellation, and
// epoch-keyed prepared-statement and result caches.
type Service struct {
	eng   *vida.Engine
	core  *core.Engine
	pool  *sched.Pool
	cfg   Config
	admit *admitQueue

	prepared *lruCache
	results  *lruCache

	// Observability: the /debug/queries profile ring, per-endpoint
	// request-duration histograms (fixed keys, read-only after init)
	// and per-phase execution-time histograms.
	profiles *profileRing
	reqHists map[string]*durHist
	phases   [numPhases]durHist

	admitted     atomic.Int64
	rejected     atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	cancelled    atomic.Int64
	inFlight     atomic.Int64
	streams      atomic.Int64
	resultHits   atomic.Int64
	resultMisses atomic.Int64
	prepHits     atomic.Int64
	prepMisses   atomic.Int64
	panics       atomic.Int64 // HTTP handler panics recovered
}

// NewService wraps an engine with admission control and session caches.
// The pool is only reported in stats (the engine was built with it); it
// may be nil.
func NewService(eng *vida.Engine, pool *sched.Pool, cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		eng:      eng,
		core:     eng.Internal(),
		pool:     pool,
		cfg:      cfg,
		admit:    newAdmitQueue(cfg.MaxInFlight, cfg.MaxQueue),
		prepared: newLRU(cfg.PreparedCacheEntries, 0),
		results:  newLRU(cfg.ResultCacheEntries, cfg.ResultCacheBytes),
		profiles: newProfileRing(cfg.ProfileEntries),
		reqHists: map[string]*durHist{
			epQuery: {}, epSQL: {}, epStream: {}, epExplain: {},
		},
	}
}

// The endpoint labels used by profiles, request histograms and the
// X-Vida-Query-Id correlation.
const (
	epQuery   = "query"
	epSQL     = "sql"
	epStream  = "stream"
	epExplain = "explain"
)

// observeRequest records one HTTP request's wall time in the
// per-endpoint histogram (unknown endpoints are dropped).
func (s *Service) observeRequest(endpoint string, d time.Duration) {
	if h, ok := s.reqHists[endpoint]; ok {
		h.observe(d)
	}
}

// Profiles returns the retained completed-query profiles newest-first
// plus the total ever recorded.
func (s *Service) Profiles() ([]*QueryProfile, int64) {
	return s.profiles.snapshot()
}

// Engine returns the wrapped engine.
func (s *Service) Engine() *vida.Engine { return s.eng }

// Pool returns the shared scheduler pool (may be nil).
func (s *Service) Pool() *sched.Pool { return s.pool }

// Close gracefully shuts the service down: the engine drains in-flight
// queries, then the pool (when owned by the caller) can be closed.
func (s *Service) Close() error { return s.eng.Close() }

// StatsSnapshot returns service counters.
func (s *Service) StatsSnapshot() Stats {
	_, waitSum, waitCount := s.admit.WaitStats()
	return Stats{
		Admitted:         s.admitted.Load(),
		Rejected:         s.rejected.Load(),
		Completed:        s.completed.Load(),
		Failed:           s.failed.Load(),
		Cancelled:        s.cancelled.Load(),
		InFlight:         s.inFlight.Load(),
		QueueDepth:       int64(s.admit.Depth()),
		QueueWaits:       waitCount,
		QueueWaitTotalMS: waitSum.Milliseconds(),
		HandlerPanics:    s.panics.Load(),
		Streams:          s.streams.Load(),
		ResultHits:       s.resultHits.Load(),
		ResultMisses:     s.resultMisses.Load(),
		ResultCacheBytes: s.results.bytesUsed(),
		PreparedHits:     s.prepHits.Load(),
		PreparedMisses:   s.prepMisses.Load(),
		Epoch:            s.core.Epoch(),
	}
}

// Outcome is one served query.
type Outcome struct {
	Result  *vida.Result
	Cached  bool // served from the result cache, no execution
	Elapsed time.Duration
	// QueryID correlates the response (X-Vida-Query-Id header) with the
	// /debug/queries profile ring and the slow-query log.
	QueryID string
	// Spans is the settled span tree of an executed query (nil for
	// result-cache hits, which execute nothing).
	Spans *trace.SpanNode
}

// Query admits, plans and executes one comprehension query. When every
// execution slot is busy the request waits in the FIFO admission queue
// until its deadline; it is shed with a BusyError (429 + Retry-After)
// only when the queue is full or the deadline cannot be met. The query
// runs under ctx plus the configured timeout — queue wait counts
// against the deadline; cancellation propagates into scans. timeout <=
// 0 (or anything beyond the service default) uses the service default.
// Positional args bind $1..$n, vida.NamedArg values bind $name; the
// result cache keys on (query, bindings).
func (s *Service) Query(ctx context.Context, src string, args []any, timeout time.Duration) (*Outcome, error) {
	return s.run(ctx, epQuery, src, args, timeout, true)
}

// run is the shared buffered-query path: result cache (when cacheable),
// admission, execution — all under a per-query tracer whose settled span
// tree feeds the profile ring, the phase histograms and the slow-query
// log.
func (s *Service) run(ctx context.Context, endpoint, src string, args []any, timeout time.Duration, cacheable bool) (*Outcome, error) {
	start := time.Now()

	// Result cache first: a hit executes nothing, so it bypasses the
	// admission queue entirely — repeats stay cheap exactly when the
	// engine is saturated. ExplainAnalyze must observe a real execution,
	// so it neither reads nor populates the cache.
	epoch := s.core.Epoch()
	key := cacheKey(src, args)
	if cacheable {
		if v, ok := s.results.get(key, epoch); ok {
			s.resultHits.Add(1)
			s.completed.Add(1)
			out := &Outcome{Result: v.(*vida.Result), Cached: true, Elapsed: time.Since(start), QueryID: trace.NewID()}
			s.profiles.record(&QueryProfile{
				ID: out.QueryID, Endpoint: endpoint, Query: clipQuery(src), Status: "ok",
				Cached: true, Start: start, ElapsedMS: durMS(out.Elapsed), Rows: int64(out.Result.Len()),
			})
			return out, nil
		}
		s.resultMisses.Add(1)
	}

	// Arm the tracer before admission so queue wait is the first span.
	tr := trace.New(trace.NewID(), endpoint)
	ctx = trace.WithTracer(ctx, tr)

	// The timeout starts before admission: a request that waits in the
	// queue spends its own deadline doing so, and one whose deadline
	// cannot be met is shed instead of queued.
	ctx, cancel := s.boundCtx(ctx, timeout)
	defer cancel()
	qsp := tr.Root().Child("queue")
	err := s.acquire(ctx)
	qsp.End()
	if err != nil {
		s.finish(tr, endpoint, src, start, 0, err)
		return nil, err
	}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		s.admit.Release()
	}()

	p, err := s.preparedFor(ctx, src, epoch, tr.Root())
	if err != nil {
		s.failed.Add(1)
		s.finish(tr, endpoint, src, start, 0, err)
		return nil, err
	}
	res, err := p.RunCtx(ctx, args...)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.cancelled.Add(1)
		} else {
			s.failed.Add(1)
		}
		s.finish(tr, endpoint, src, start, 0, err)
		return nil, err
	}
	// Re-read the epoch: a refresh that raced this execution may have
	// changed the data mid-run, and caching the result under the old
	// epoch could serve a mixed-generation answer forever.
	if cacheable && s.core.Epoch() == epoch {
		s.results.put(key, epoch, res, approxResultBytes(res))
	}
	s.completed.Add(1)
	out := &Outcome{Result: res, Elapsed: time.Since(start), QueryID: tr.ID()}
	out.Spans = s.finish(tr, endpoint, src, start, int64(res.Len()), nil)
	return out, nil
}

// finish settles one traced query: it closes the span tree, rolls the
// phases into the /metrics histograms, records the /debug/queries
// profile and emits the structured slow-query log.
func (s *Service) finish(tr *trace.Tracer, endpoint, src string, start time.Time, rows int64, qerr error) *trace.SpanNode {
	tr.Finish()
	snap := tr.Snapshot()
	elapsed := time.Since(start)
	ph := phaseTimes(snap)
	for i, d := range ph {
		// Observe even zero durations: the count then reads as "queries
		// that went through this phase", matching vida_queries_total.
		s.phases[i].observe(d)
	}
	status := "ok"
	var errMsg string
	switch {
	case qerr == nil:
	case errors.Is(qerr, ErrBusy):
		status, errMsg = "shed", qerr.Error()
	case errors.Is(qerr, context.Canceled), errors.Is(qerr, context.DeadlineExceeded):
		status, errMsg = "cancelled", qerr.Error()
	default:
		status, errMsg = "failed", qerr.Error()
	}
	s.profiles.record(&QueryProfile{
		ID: tr.ID(), Endpoint: endpoint, Query: clipQuery(src), Status: status, Error: errMsg,
		Start: start, ElapsedMS: durMS(elapsed), Rows: rows, Spans: snap,
	})
	if t := s.cfg.SlowQueryThreshold; t > 0 && elapsed >= t {
		slog.Warn("slow query",
			"query_id", tr.ID(), "endpoint", endpoint, "status", status,
			"duration_ms", durMS(elapsed), "rows", rows,
			"queue_ms", durMS(ph[phaseQueue]), "compile_ms", durMS(ph[phaseCompile]),
			"scan_ms", durMS(ph[phaseScan]), "fold_ms", durMS(ph[phaseFold]),
			"query", clipQuery(src))
	}
	return snap
}

// Analysis is the outcome of ExplainAnalyze: the optimized plan next to
// the executed query's settled span tree (EXPLAIN ANALYZE over HTTP).
type Analysis struct {
	QueryID   string          `json:"query_id"`
	Plan      string          `json:"plan"`
	Rows      int64           `json:"rows"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Spans     *trace.SpanNode `json:"spans"`
}

// ExplainAnalyze plans and executes one query under an armed tracer and
// returns the plan annotated with the execution's span tree. It goes
// through admission like any query but bypasses the result cache in
// both directions — the point is to observe a real execution.
func (s *Service) ExplainAnalyze(ctx context.Context, src string, sql bool, args []any, timeout time.Duration) (*Analysis, error) {
	if sql {
		comp, err := s.eng.TranslateSQL(src)
		if err != nil {
			return nil, &BadQueryError{Err: err}
		}
		src = comp
	}
	plan, err := s.eng.Explain(src)
	if err != nil {
		return nil, &BadQueryError{Err: err}
	}
	out, err := s.run(ctx, epExplain, src, args, timeout, false)
	if err != nil {
		return nil, err
	}
	return &Analysis{
		QueryID:   out.QueryID,
		Plan:      plan,
		Rows:      int64(out.Result.Len()),
		ElapsedMS: durMS(out.Elapsed),
		Spans:     out.Spans,
	}, nil
}

// acquire runs admission and classifies its failures: sheds count as
// rejected, a client that went away while queued as cancelled.
func (s *Service) acquire(ctx context.Context) error {
	if err := s.admit.Acquire(ctx); err != nil {
		if errors.Is(err, ErrBusy) {
			s.rejected.Add(1)
		} else {
			s.cancelled.Add(1)
		}
		return err
	}
	s.admitted.Add(1)
	return nil
}

// QuerySQL translates SQL to a comprehension and serves it through the
// same admission/caching path (equivalent SQL and comprehension queries
// share cache entries).
func (s *Service) QuerySQL(ctx context.Context, src string, args []any, timeout time.Duration) (*Outcome, error) {
	comp, err := s.eng.TranslateSQL(src)
	if err != nil {
		return nil, &BadQueryError{Err: err}
	}
	return s.run(ctx, epSQL, comp, args, timeout, true)
}

// boundCtx applies the admission timeout policy: requests may shorten
// the configured bound, never extend it — an oversized timeout would
// otherwise pin an admission slot far beyond what the operator allowed.
func (s *Service) boundCtx(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if def := s.cfg.DefaultTimeout; timeout <= 0 || (def > 0 && timeout > def) {
		timeout = def
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return context.WithCancel(ctx)
}

// QueryRows admits one query and opens a streaming cursor over its
// result: rows reach the caller batch-at-a-time with bounded memory,
// which is what lets the HTTP layer send arbitrarily large results as
// NDJSON without buffering them. The admission slot is held for the
// stream's whole lifetime — a streaming client occupies engine capacity
// exactly like an executing query — and is released by the returned
// release func, which must be called exactly once (after Close on the
// rows). Streamed results bypass the result cache. The returned query
// ID correlates the response header with the stream's profile, which is
// recorded when release settles the outcome.
func (s *Service) QueryRows(ctx context.Context, src string, sql bool, args []any, timeout time.Duration) (*vida.Rows, string, func(), error) {
	if sql {
		comp, err := s.eng.TranslateSQL(src)
		if err != nil {
			return nil, "", nil, &BadQueryError{Err: err}
		}
		src = comp
	}
	start := time.Now()
	tr := trace.New(trace.NewID(), epStream)
	ctx = trace.WithTracer(ctx, tr)
	ctx, cancel := s.boundCtx(ctx, timeout)
	qsp := tr.Root().Child("queue")
	if err := s.acquire(ctx); err != nil {
		qsp.End()
		cancel()
		s.finish(tr, epStream, src, start, 0, err)
		return nil, "", nil, err
	}
	qsp.End()
	s.inFlight.Add(1)
	s.streams.Add(1)
	var once sync.Once
	finish := func(outcome func() error) {
		once.Do(func() {
			cancel()
			s.inFlight.Add(-1)
			s.admit.Release()
			err := outcome()
			switch {
			case err == nil:
				s.completed.Add(1)
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				s.cancelled.Add(1)
			default:
				s.failed.Add(1)
			}
			// The producer goroutine has exited by the time release runs
			// (callers Close the rows first), so the span tree is settled.
			s.finish(tr, epStream, src, start, 0, err)
		})
	}
	p, err := s.preparedFor(ctx, src, s.core.Epoch(), tr.Root())
	if err != nil {
		finish(func() error { return err })
		return nil, "", nil, err
	}
	rows, err := p.RunRowsCtx(ctx, args...)
	if err != nil {
		finish(func() error { return err })
		return nil, "", nil, err
	}
	// The release closure classifies the stream by its terminal error:
	// callers Close the rows first, so Err is settled — a stream that
	// died mid-flight counts as cancelled/failed, not completed.
	return rows, tr.ID(), func() { finish(rows.Err) }, nil
}

// cacheKey builds the result-cache key for a query and its bindings.
// Bindings arrive JSON-decoded (scalars only), so their rendering is
// deterministic; each component is length-prefixed so no crafted value
// can collide with a different binding set (an unframed delimiter
// would let ["a\x1fb"] alias ["a","b"]).
func cacheKey(src string, args []any) string {
	var sb strings.Builder
	frame := func(part string) {
		fmt.Fprintf(&sb, "\x1f%d:%s", len(part), part)
	}
	frame(src)
	for _, a := range args {
		if na, ok := a.(vida.NamedArg); ok {
			frame("$" + na.Name) // "$"-prefix: cannot collide with positional "#"
			frame(fmt.Sprintf("%T:%v", na.Value, na.Value))
			continue
		}
		frame("#")
		frame(fmt.Sprintf("%T:%v", a, a))
	}
	return sb.String()
}

// preparedFor returns the cached prepared statement for (src, epoch) or
// runs the frontend and installs it. The root span is annotated with the
// prepared-cache outcome — a hit skips the frontend entirely, so the
// span tree would otherwise show no compile phase without explanation.
func (s *Service) preparedFor(ctx context.Context, src string, epoch int64, sp *trace.Span) (*vida.Prepared, error) {
	if v, ok := s.prepared.get(src, epoch); ok {
		s.prepHits.Add(1)
		if sp != nil {
			sp.SetAttr("prepared_cache", "hit")
		}
		return v.(*vida.Prepared), nil
	}
	s.prepMisses.Add(1)
	if sp != nil {
		sp.SetAttr("prepared_cache", "miss")
	}
	p, err := s.eng.PrepareCtx(ctx, src)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, &BadQueryError{Err: err}
	}
	s.prepared.put(src, epoch, p, 0)
	return p, nil
}

// approxResultBytes estimates the resident size of a cached result.
// Large collections are sampled (first sampleElems elements extrapolate
// to the whole), so sizing a 100k-row result does not walk 100k rows.
func approxResultBytes(r *vida.Result) int64 {
	return approxValueBytes(r.Value(), 0)
}

const sampleElems = 64

func approxValueBytes(v vida.Value, depth int) int64 {
	const header = 24 // Value struct + boxing overhead, roughly
	if depth > 8 {
		return header
	}
	switch v.Kind() {
	case "string":
		return header + int64(len(v.Str()))
	case "record":
		n := int64(header)
		for _, f := range v.Fields() {
			n += int64(len(f.Name)) + 16 + approxValueBytes(f.Val, depth+1)
		}
		return n
	case "list", "bag", "set", "array":
		elems := v.Elems()
		if len(elems) == 0 {
			return header
		}
		if len(elems) <= sampleElems {
			n := int64(header)
			for _, e := range elems {
				n += approxValueBytes(e, depth+1)
			}
			return n
		}
		var sampled int64
		for _, e := range elems[:sampleElems] {
			sampled += approxValueBytes(e, depth+1)
		}
		return header + sampled*int64(len(elems))/sampleElems
	default:
		return header
	}
}

// lruCache is a small epoch-aware LRU: entries whose epoch no longer
// matches the engine's are treated as absent (and evicted on touch), so
// Refresh invalidates the whole cache without a sweep. Eviction honours
// two budgets: an entry count and, when maxBytes > 0, the summed
// approximate byte size of the entries.
type lruCache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	bytes    int64
	ll       *list.List
	items    map[string]*list.Element
}

type lruEntry struct {
	key   string
	epoch int64
	val   any
	size  int64
}

func newLRU(max int, maxBytes int64) *lruCache {
	if max < 0 {
		max = 0
	}
	if maxBytes < 0 {
		maxBytes = 0 // no byte budget
	}
	return &lruCache{max: max, maxBytes: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string, epoch int64) (any, bool) {
	if c.max == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*lruEntry)
	if ent.epoch != epoch {
		c.removeLocked(el)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return ent.val, true
}

func (c *lruCache) put(key string, epoch int64, val any, size int64) {
	if c.max == 0 {
		return
	}
	// An entry bigger than the whole byte budget can never be resident;
	// inserting it would only evict everything else first.
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*lruEntry)
		c.bytes += size - ent.size
		ent.epoch, ent.val, ent.size = epoch, val, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, epoch: epoch, val: val, size: size})
		c.bytes += size
	}
	for c.ll.Len() > c.max || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
	}
}

func (c *lruCache) removeLocked(el *list.Element) {
	ent := el.Value.(*lruEntry)
	c.bytes -= ent.size
	c.ll.Remove(el)
	delete(c.items, ent.key)
}

func (c *lruCache) bytesUsed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
