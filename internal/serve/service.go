package serve

import (
	"container/list"
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vida"
	"vida/internal/core"
	"vida/internal/sched"
)

// ErrBusy is returned when the in-flight query limit is reached; the
// HTTP layer maps it to 429 Too Many Requests.
var ErrBusy = errors.New("serve: too many in-flight queries")

// BadQueryError marks failures of the query frontend (syntax, type,
// translation): the request itself is at fault, so the HTTP layer maps
// it to 400 rather than 500.
type BadQueryError struct{ Err error }

func (e *BadQueryError) Error() string { return e.Err.Error() }

// Unwrap supports errors.Is/As through the wrapper.
func (e *BadQueryError) Unwrap() error { return e.Err }

// Config tunes the admission/session layer.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (default
	// 4×GOMAXPROCS; queries beyond it are rejected with ErrBusy).
	MaxInFlight int
	// DefaultTimeout bounds each query's execution; requests may shorten
	// it but never extend it (default 30s; <0 disables the bound and
	// lets requests pick any timeout).
	DefaultTimeout time.Duration
	// ResultCacheEntries bounds the query-result LRU (default 256;
	// <0 disables).
	ResultCacheEntries int
	// PreparedCacheEntries bounds the prepared-statement LRU (default
	// 256; <0 disables).
	PreparedCacheEntries int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.ResultCacheEntries == 0 {
		c.ResultCacheEntries = 256
	}
	if c.PreparedCacheEntries == 0 {
		c.PreparedCacheEntries = 256
	}
	return c
}

// Stats is a snapshot of service activity, reported by GET /stats next
// to the engine's own counters.
type Stats struct {
	Admitted       int64 `json:"admitted"`
	Rejected       int64 `json:"rejected"`
	Completed      int64 `json:"completed"`
	Failed         int64 `json:"failed"`
	Cancelled      int64 `json:"cancelled"`
	InFlight       int64 `json:"in_flight"`
	ResultHits     int64 `json:"result_cache_hits"`
	ResultMisses   int64 `json:"result_cache_misses"`
	PreparedHits   int64 `json:"prepared_cache_hits"`
	PreparedMisses int64 `json:"prepared_cache_misses"`
	Epoch          int64 `json:"epoch"`
}

// Service is the admission/session layer over one engine: bounded
// in-flight queries, per-query timeouts and cancellation, and
// epoch-keyed prepared-statement and result caches.
type Service struct {
	eng  *vida.Engine
	core *core.Engine
	pool *sched.Pool
	cfg  Config
	sem  chan struct{}

	prepared *lruCache
	results  *lruCache

	admitted     atomic.Int64
	rejected     atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	cancelled    atomic.Int64
	inFlight     atomic.Int64
	resultHits   atomic.Int64
	resultMisses atomic.Int64
	prepHits     atomic.Int64
	prepMisses   atomic.Int64
}

// NewService wraps an engine with admission control and session caches.
// The pool is only reported in stats (the engine was built with it); it
// may be nil.
func NewService(eng *vida.Engine, pool *sched.Pool, cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		eng:      eng,
		core:     eng.Internal(),
		pool:     pool,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		prepared: newLRU(cfg.PreparedCacheEntries),
		results:  newLRU(cfg.ResultCacheEntries),
	}
}

// Engine returns the wrapped engine.
func (s *Service) Engine() *vida.Engine { return s.eng }

// Pool returns the shared scheduler pool (may be nil).
func (s *Service) Pool() *sched.Pool { return s.pool }

// Close gracefully shuts the service down: the engine drains in-flight
// queries, then the pool (when owned by the caller) can be closed.
func (s *Service) Close() error { return s.eng.Close() }

// StatsSnapshot returns service counters.
func (s *Service) StatsSnapshot() Stats {
	return Stats{
		Admitted:       s.admitted.Load(),
		Rejected:       s.rejected.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		Cancelled:      s.cancelled.Load(),
		InFlight:       s.inFlight.Load(),
		ResultHits:     s.resultHits.Load(),
		ResultMisses:   s.resultMisses.Load(),
		PreparedHits:   s.prepHits.Load(),
		PreparedMisses: s.prepMisses.Load(),
		Epoch:          s.core.Epoch(),
	}
}

// Outcome is one served query.
type Outcome struct {
	Result  *vida.Result
	Cached  bool // served from the result cache, no execution
	Elapsed time.Duration
}

// Query admits, plans and executes one comprehension query. Beyond the
// in-flight limit it fails fast with ErrBusy. The query runs under ctx
// plus the configured timeout; cancellation propagates into scans.
// timeout <= 0 (or anything beyond the service default) uses the
// service default.
func (s *Service) Query(ctx context.Context, src string, timeout time.Duration) (*Outcome, error) {
	start := time.Now()

	// Result cache first: a hit executes nothing, so it is served even
	// when every admission slot is held by slow queries — repeats stay
	// cheap exactly when the engine is saturated.
	epoch := s.core.Epoch()
	if v, ok := s.results.get(src, epoch); ok {
		s.resultHits.Add(1)
		s.completed.Add(1)
		return &Outcome{Result: v.(*vida.Result), Cached: true, Elapsed: time.Since(start)}, nil
	}
	s.resultMisses.Add(1)

	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		return nil, ErrBusy
	}
	s.admitted.Add(1)
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()
	// Requests may shorten the configured bound, never extend it: an
	// oversized timeout_ms would otherwise pin an admission slot far
	// beyond what the operator allowed.
	if def := s.cfg.DefaultTimeout; timeout <= 0 || (def > 0 && timeout > def) {
		timeout = def
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	p, err := s.preparedFor(ctx, src, epoch)
	if err != nil {
		s.failed.Add(1)
		return nil, err
	}
	res, err := p.RunCtx(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.cancelled.Add(1)
		} else {
			s.failed.Add(1)
		}
		return nil, err
	}
	// Re-read the epoch: a refresh that raced this execution may have
	// changed the data mid-run, and caching the result under the old
	// epoch could serve a mixed-generation answer forever.
	if s.core.Epoch() == epoch {
		s.results.put(src, epoch, res)
	}
	s.completed.Add(1)
	return &Outcome{Result: res, Elapsed: time.Since(start)}, nil
}

// QuerySQL translates SQL to a comprehension and serves it through the
// same admission/caching path (equivalent SQL and comprehension queries
// share cache entries).
func (s *Service) QuerySQL(ctx context.Context, src string, timeout time.Duration) (*Outcome, error) {
	comp, err := s.eng.TranslateSQL(src)
	if err != nil {
		return nil, &BadQueryError{Err: err}
	}
	return s.Query(ctx, comp, timeout)
}

// preparedFor returns the cached prepared statement for (src, epoch) or
// runs the frontend and installs it.
func (s *Service) preparedFor(ctx context.Context, src string, epoch int64) (*vida.Prepared, error) {
	if v, ok := s.prepared.get(src, epoch); ok {
		s.prepHits.Add(1)
		return v.(*vida.Prepared), nil
	}
	s.prepMisses.Add(1)
	p, err := s.eng.PrepareCtx(ctx, src)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, &BadQueryError{Err: err}
	}
	s.prepared.put(src, epoch, p)
	return p, nil
}

// lruCache is a small epoch-aware LRU: entries whose epoch no longer
// matches the engine's are treated as absent (and evicted on touch), so
// Refresh invalidates the whole cache without a sweep.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key   string
	epoch int64
	val   any
}

func newLRU(max int) *lruCache {
	if max < 0 {
		max = 0
	}
	return &lruCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string, epoch int64) (any, bool) {
	if c.max == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*lruEntry)
	if ent.epoch != epoch {
		c.ll.Remove(el)
		delete(c.items, key)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return ent.val, true
}

func (c *lruCache) put(key string, epoch int64, val any) {
	if c.max == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*lruEntry)
		ent.epoch, ent.val = epoch, val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, epoch: epoch, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
