package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"vida/internal/trace"
)

// This file is the service's query-observability core: a lock-free
// latency histogram reused for admission waits, per-endpoint request
// durations and per-phase execution times; a fixed-size ring of
// completed query profiles behind GET /debug/queries; and the rollup
// that turns a settled span tree into phase durations.

// durHist is a cumulative latency histogram over the waitBuckets bounds
// (the final implicit bucket is +Inf). Observation is lock-free, so it
// sits on the request path without contention.
type durHist struct {
	counts [numWaitBuckets + 1]atomic.Int64
	sumNS  atomic.Int64
	obs    atomic.Int64
}

// observe records one duration.
func (h *durHist) observe(d time.Duration) {
	i := 0
	for ; i < len(waitBuckets); i++ {
		if d <= waitBuckets[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.obs.Add(1)
}

// stats returns the cumulative bucket counts (entry i counts
// observations ≤ waitBuckets[i]; the final entry is the +Inf total),
// the summed duration and the observation count.
func (h *durHist) stats() (cumulative []int64, sum time.Duration, count int64) {
	cumulative = make([]int64, len(waitBuckets)+1)
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return cumulative, time.Duration(h.sumNS.Load()), h.obs.Load()
}

// The query phases rolled up from span trees into /metrics histograms:
// admission queue wait, frontend compile, scan (raw or cache), and the
// fold residue (fold wall time minus the scans it pulls from).
const (
	phaseQueue = iota
	phaseCompile
	phaseScan
	phaseFold
	numPhases
)

// phaseNames index the phase histograms and label their exposition.
var phaseNames = [numPhases]string{"queue", "compile", "scan", "fold"}

// phaseTimes rolls one settled span tree up into phase durations. Scan
// spans are inclusive children of the pull pipeline, so the fold phase
// reports the non-scan residue; nested fold spans (a top-k wrapping an
// inner fold) count once, at the outermost level.
func phaseTimes(root *trace.SpanNode) [numPhases]time.Duration {
	var out [numPhases]time.Duration
	var walk func(n *trace.SpanNode, inFold bool)
	walk = func(n *trace.SpanNode, inFold bool) {
		switch n.Name {
		case "queue":
			out[phaseQueue] += n.Duration()
		case "frontend":
			out[phaseCompile] += n.Duration()
		case "scan":
			out[phaseScan] += n.Duration()
		case "fold":
			if !inFold {
				out[phaseFold] += n.Duration()
				inFold = true
			}
		}
		for _, c := range n.Children {
			walk(c, inFold)
		}
	}
	if root != nil {
		walk(root, false)
	}
	if out[phaseFold] > out[phaseScan] {
		out[phaseFold] -= out[phaseScan]
	} else if out[phaseScan] > 0 {
		// Parallel scans can sum past the fold's wall time; clamp rather
		// than report a negative residue.
		out[phaseFold] = 0
	}
	return out
}

// QueryProfile is one completed query as retained by the profile ring
// and served at GET /debug/queries. ID matches the X-Vida-Query-Id
// response header, so a slow response can be correlated with its
// profile after the fact.
type QueryProfile struct {
	ID        string          `json:"id"`
	Endpoint  string          `json:"endpoint"`
	Query     string          `json:"query"`
	Status    string          `json:"status"` // ok | failed | cancelled | shed
	Error     string          `json:"error,omitempty"`
	Cached    bool            `json:"cached"`
	Start     time.Time       `json:"start"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Rows      int64           `json:"rows"`
	Spans     *trace.SpanNode `json:"spans,omitempty"`
}

// profileQueryLimit caps the query text retained per profile; span
// trees are small but query strings arrive client-sized.
const profileQueryLimit = 512

// clipQuery bounds a query string for retention and logging.
func clipQuery(q string) string {
	if len(q) > profileQueryLimit {
		return q[:profileQueryLimit] + "..."
	}
	return q
}

// durMS renders a duration as fractional milliseconds, matching the
// elapsed_ms convention of the query endpoints.
func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// profileRing retains the last N completed query profiles. A capacity
// of zero disables retention but keeps counting.
type profileRing struct {
	mu    sync.Mutex
	buf   []*QueryProfile
	next  int // overwrite cursor once the ring has wrapped
	total int64
}

func newProfileRing(n int) *profileRing {
	if n <= 0 {
		return &profileRing{}
	}
	return &profileRing{buf: make([]*QueryProfile, 0, n)}
}

// record retains one profile, evicting the oldest when full.
func (r *profileRing) record(p *QueryProfile) {
	if p == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if cap(r.buf) == 0 {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, p)
		return
	}
	r.buf[r.next] = p
	r.next = (r.next + 1) % len(r.buf)
}

// snapshot returns the retained profiles newest-first plus the total
// ever recorded (so clients can tell how much history scrolled away).
func (r *profileRing) snapshot() ([]*QueryProfile, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	out := make([]*QueryProfile, 0, n)
	for i := 0; i < n; i++ {
		// r.next is the oldest entry once wrapped and 0 during the fill
		// phase — either way (next+i) mod n walks oldest→newest.
		out = append(out, r.buf[(r.next+i)%n])
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, r.total
}
