package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file implements queued, deadline-aware admission. The previous
// gate was a fail-fast semaphore: the moment MaxInFlight queries were
// executing, every further request bounced with 429 — even when a slot
// would free up well within the request's deadline. Now requests that
// miss the fast path join a bounded FIFO queue and wait for a slot until
// their deadline; the service sheds with 429 (plus a Retry-After derived
// from the observed drain rate) only when the queue is full or the
// deadline cannot be met. Result-cache hits never enter the queue.
//
// Invariants:
//   - free > 0 implies no waiters: a releasing query hands its slot
//     directly to the queue head (closing the waiter's channel) instead
//     of incrementing free, so FIFO order holds and a slot is never
//     parked while someone waits.
//   - Every Acquire that returns nil is balanced by exactly one Release,
//     even when the grant races the waiter's cancellation: a cancelled
//     waiter that was already granted passes the slot on before failing.

// BusyError is the typed shed error: the request was turned away by
// admission (queue full, or its deadline cannot be met while queued).
// It matches errors.Is(err, ErrBusy), so existing callers keep working;
// the HTTP layer adds a Retry-After header from the estimate.
type BusyError struct {
	// RetryAfter estimates when a retry is likely to be admitted,
	// derived from queue depth × the EWMA of slot inter-release times.
	RetryAfter time.Duration
	// Reason distinguishes "queue full" from "deadline before slot".
	Reason string
}

// Error implements error.
func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: too many in-flight queries (%s; retry after %s)", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// Is matches the legacy ErrBusy sentinel.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// numWaitBuckets is len(waitBuckets); kept as a constant so the
// histogram counters can live in a fixed-size array.
const numWaitBuckets = 7

// waitBuckets are the admission-wait histogram upper bounds (the last
// implicit bucket is +Inf). Exposed on /metrics in seconds.
var waitBuckets = [numWaitBuckets]time.Duration{
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2500 * time.Millisecond,
	10 * time.Second,
}

// admitQueue is the bounded-FIFO admission gate.
type admitQueue struct {
	mu       sync.Mutex
	capacity int        // execution slots (MaxInFlight)
	free     int        // idle slots; free > 0 ⟹ waiters empty
	maxQueue int        // waiter bound; 0 = fail-fast (no queueing)
	waiters  *list.List // of *admitWaiter, FIFO

	// Drain-rate estimate: EWMA of the interval between slot releases,
	// guarded by mu. Retry-After ≈ (position in line) × this.
	lastRelease time.Time
	drainEWMA   time.Duration

	// Wait histogram (lock-free observation).
	waits durHist
}

// admitWaiter is one queued request; grant closes ch (the slot transfers
// with the close).
type admitWaiter struct {
	ch chan struct{}
}

func newAdmitQueue(capacity, maxQueue int) *admitQueue {
	return &admitQueue{
		capacity: capacity,
		free:     capacity,
		maxQueue: maxQueue,
		waiters:  list.New(),
	}
}

// Acquire takes an execution slot, waiting in FIFO order until ctx's
// deadline when none is free. It returns nil (slot held; caller must
// Release exactly once), a *BusyError (shed: queue full or deadline
// unmeetable), or ctx.Err() (client cancelled while queued).
func (q *admitQueue) Acquire(ctx context.Context) error {
	q.mu.Lock()
	if q.free > 0 {
		q.free--
		q.mu.Unlock()
		q.observeWait(0)
		return nil
	}
	if q.waiters.Len() >= q.maxQueue {
		err := &BusyError{RetryAfter: q.retryAfterLocked(), Reason: "admission queue full"}
		q.mu.Unlock()
		return err
	}
	// Deadline-aware shedding: if the request cannot plausibly reach the
	// front of the line before its deadline, turn it away now instead of
	// letting it occupy queue space it can never use.
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 || (q.drainEWMA > 0 && time.Duration(q.waiters.Len()+1)*q.drainEWMA > remaining) {
			err := &BusyError{RetryAfter: q.retryAfterLocked(), Reason: "deadline before slot"}
			q.mu.Unlock()
			return err
		}
	}
	w := &admitWaiter{ch: make(chan struct{})}
	el := q.waiters.PushBack(w)
	q.mu.Unlock()

	start := time.Now()
	select {
	case <-w.ch:
		q.observeWait(time.Since(start))
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		select {
		case <-w.ch:
			// Grant raced the cancellation: we hold a slot we will not
			// use. Pass it straight on so no slot is lost (and no waiter
			// behind us is starved).
			q.releaseLocked()
		default:
			q.waiters.Remove(el)
		}
		retry := q.retryAfterLocked()
		q.mu.Unlock()
		q.observeWait(time.Since(start))
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The deadline expired while queued: the request was never
			// admitted, so it is a shed (429 + Retry-After), not a 504.
			return &BusyError{RetryAfter: retry, Reason: "deadline before slot"}
		}
		return ctx.Err()
	}
}

// Release returns a slot, handing it directly to the queue head when one
// is waiting. Each successful Acquire must be balanced by exactly one
// Release.
func (q *admitQueue) Release() {
	q.mu.Lock()
	now := time.Now()
	if !q.lastRelease.IsZero() {
		interval := now.Sub(q.lastRelease)
		if q.drainEWMA == 0 {
			q.drainEWMA = interval
		} else {
			q.drainEWMA = (q.drainEWMA*4 + interval) / 5
		}
	}
	q.lastRelease = now
	q.releaseLocked()
	q.mu.Unlock()
}

func (q *admitQueue) releaseLocked() {
	if el := q.waiters.Front(); el != nil {
		q.waiters.Remove(el)
		close(el.Value.(*admitWaiter).ch)
		return
	}
	q.free++
}

// Depth returns the number of queued (not yet admitted) requests.
func (q *admitQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiters.Len()
}

// InUse returns the number of held execution slots.
func (q *admitQueue) InUse() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.capacity - q.free
}

// retryAfterLocked estimates when a retry would be admitted: one full
// queue drain at the observed rate, clamped to a sane range. With no
// drain history yet the estimate defaults to one second.
func (q *admitQueue) retryAfterLocked() time.Duration {
	avg := q.drainEWMA
	if avg <= 0 {
		return time.Second
	}
	eta := time.Duration(q.waiters.Len()+1) * avg
	if eta < 100*time.Millisecond {
		eta = 100 * time.Millisecond
	}
	if eta > 30*time.Second {
		eta = 30 * time.Second
	}
	return eta
}

// observeWait records one admission wait in the histogram.
func (q *admitQueue) observeWait(d time.Duration) {
	q.waits.observe(d)
}

// WaitStats returns the cumulative histogram (bucket i counts waits ≤
// waitBuckets[i]; the final entry is the +Inf total), the summed wait
// time and the observation count.
func (q *admitQueue) WaitStats() (cumulative []int64, sum time.Duration, count int64) {
	return q.waits.stats()
}
