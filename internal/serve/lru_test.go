package serve

import (
	"fmt"
	"strings"
	"testing"

	"vida"
)

func TestLRUByteBudgetEviction(t *testing.T) {
	c := newLRU(100, 1000)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("k%d", i), 1, i, 300)
	}
	// 1000/300 → at most 3 entries resident.
	if n := c.len(); n > 3 {
		t.Fatalf("entries = %d, want <= 3 under the byte budget", n)
	}
	if b := c.bytesUsed(); b > 1000 {
		t.Fatalf("bytes = %d, want <= 1000", b)
	}
	// The newest entries survive.
	if _, ok := c.get("k9", 1); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.get("k0", 1); ok {
		t.Fatal("oldest entry still resident past the budget")
	}
}

func TestLRUOversizedEntryRejected(t *testing.T) {
	c := newLRU(100, 1000)
	c.put("small", 1, "v", 100)
	c.put("huge", 1, "v", 5000)
	if _, ok := c.get("huge", 1); ok {
		t.Fatal("entry larger than the whole budget must not be cached")
	}
	if _, ok := c.get("small", 1); !ok {
		t.Fatal("oversized insert evicted resident entries")
	}
}

func TestLRUResizeOnUpdate(t *testing.T) {
	c := newLRU(100, 1000)
	c.put("k", 1, "v", 100)
	c.put("k", 1, "v2", 400)
	if b := c.bytesUsed(); b != 400 {
		t.Fatalf("bytes = %d after update, want 400", b)
	}
	c.put("k", 1, "v3", 50)
	if b := c.bytesUsed(); b != 50 {
		t.Fatalf("bytes = %d after shrink, want 50", b)
	}
}

func TestApproxResultBytesSamplesLargeResults(t *testing.T) {
	small := resultOf(rowsOfStrings(10, 100))
	large := resultOf(rowsOfStrings(10000, 100))
	sb, lb := approxResultBytes(small), approxResultBytes(large)
	if sb <= 0 || lb <= 0 {
		t.Fatalf("sizes: %d, %d", sb, lb)
	}
	// 1000× the rows should estimate roughly 1000× the bytes (sampling
	// must extrapolate, not truncate).
	ratio := float64(lb) / float64(sb)
	if ratio < 500 || ratio > 2000 {
		t.Fatalf("size ratio = %.1f, want ~1000 (sampled extrapolation)", ratio)
	}
}

func rowsOfStrings(n, width int) []vida.Value {
	out := make([]vida.Value, n)
	for i := range out {
		out[i] = vida.NewRecord(vida.Field{
			Name: "s", Val: vida.NewString(strings.Repeat("x", width)),
		})
	}
	return out
}

func resultOf(rows []vida.Value) *vida.Result {
	eng := vida.New()
	if err := eng.RegisterValues("T", rows, ""); err != nil {
		panic(err)
	}
	res, err := eng.Query("for { t <- T } yield bag t")
	if err != nil {
		panic(err)
	}
	return res
}
