package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vida/internal/sched"
	"vida/internal/serve"
	"vida/internal/trace"
)

// analyzeResponse mirrors the JSON of POST /explain with analyze=true.
type analyzeResponse struct {
	QueryID   string          `json:"query_id"`
	Plan      string          `json:"plan"`
	Rows      int64           `json:"rows"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Spans     *trace.SpanNode `json:"spans"`
}

func postAnalyze(t *testing.T, url, query string) (*analyzeResponse, http.Header, time.Duration) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": query, "analyze": true})
	start := time.Now()
	resp, err := http.Post(url+"/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %s", resp.StatusCode, raw)
	}
	var out analyzeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad analyze response %s: %v", raw, err)
	}
	return &out, resp.Header, elapsed
}

// TestExplainAnalyzeColdWarm is the tracing acceptance test: a cold CSV
// query's span tree shows the raw scan with its positional-map build
// and consistent row counts; the warm repeat flips the scan to the
// cache and drops the build event.
func TestExplainAnalyzeColdWarm(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	const q = `for { p <- Patients, p.age > 40 } yield sum p.age`
	const patientRows = 900 // newTestEngine's workload scale

	cold, hdr, reqDur := postAnalyze(t, ts.URL, q)
	if cold.Plan == "" {
		t.Fatal("analyze returned no plan")
	}
	if cold.QueryID == "" || hdr.Get("X-Vida-Query-Id") != cold.QueryID {
		t.Fatalf("query id mismatch: body %q header %q", cold.QueryID, hdr.Get("X-Vida-Query-Id"))
	}
	root := cold.Spans
	if root == nil {
		t.Fatal("analyze returned no span tree")
	}
	if root.Name != "explain" {
		t.Fatalf("root span %q, want explain", root.Name)
	}
	if root.DurationMS <= 0 || root.Duration() > reqDur {
		t.Fatalf("root wall time %v outside (0, request duration %v]", root.Duration(), reqDur)
	}
	for _, name := range []string{"queue", "frontend", "fold"} {
		if root.Find(name) == nil {
			t.Fatalf("cold span tree missing %q span:\n%s", name, spanDump(root))
		}
	}
	scan := root.Find("scan")
	if scan == nil {
		t.Fatalf("cold span tree has no scan span:\n%s", spanDump(root))
	}
	if mode := scan.Attrs["mode"]; mode != "raw" {
		t.Fatalf("cold scan mode %v, want raw", mode)
	}
	if scan.Attrs["source"] != "Patients" {
		t.Fatalf("cold scan source %v, want Patients", scan.Attrs["source"])
	}
	if scan.Rows != patientRows {
		t.Fatalf("cold scan counted %d rows, want %d", scan.Rows, patientRows)
	}
	if scan.Bytes <= 0 || scan.Batches <= 0 {
		t.Fatalf("cold scan bytes/batches not accounted: %d/%d", scan.Bytes, scan.Batches)
	}
	if root.Find("posmap_build") == nil {
		t.Fatalf("cold CSV scan recorded no posmap_build event:\n%s", spanDump(root))
	}

	warm, _, _ := postAnalyze(t, ts.URL, q)
	wroot := warm.Spans
	if warm.QueryID == cold.QueryID {
		t.Fatal("warm analyze reused the cold query ID")
	}
	wscan := wroot.Find("scan")
	if wscan == nil {
		t.Fatalf("warm span tree has no scan span:\n%s", spanDump(wroot))
	}
	if mode := wscan.Attrs["mode"]; mode != "cache" {
		t.Fatalf("warm scan mode %v, want cache", mode)
	}
	if wscan.Rows != patientRows {
		t.Fatalf("warm scan counted %d rows, want %d", wscan.Rows, patientRows)
	}
	if wroot.Find("posmap_build") != nil {
		t.Fatalf("warm cache scan still records a posmap build:\n%s", spanDump(wroot))
	}
	if wroot.Attrs["prepared_cache"] != "hit" {
		t.Fatalf("warm repeat missed the prepared cache: %v", wroot.Attrs)
	}
}

// spanDump renders a span tree for failure messages.
func spanDump(n *trace.SpanNode) string {
	var sb strings.Builder
	var walk func(n *trace.SpanNode, depth int)
	walk = func(n *trace.SpanNode, depth int) {
		fmt.Fprintf(&sb, "%s%s %.3fms rows=%d attrs=%v\n", strings.Repeat("  ", depth), n.Name, n.DurationMS, n.Rows, n.Attrs)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if n != nil {
		walk(n, 0)
	}
	return sb.String()
}

// TestQueryIDAndDebugQueries correlates the X-Vida-Query-Id response
// header with the /debug/queries profile ring.
func TestQueryIDAndDebugQueries(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	const q = `for { p <- Patients } yield count p`

	body, _ := json.Marshal(map[string]any{"query": q})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	qid := resp.Header.Get("X-Vida-Query-Id")
	if qid == "" {
		t.Fatal("no X-Vida-Query-Id header on /query")
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out["query_id"] != qid {
		t.Fatalf("body query_id %v != header %q", out["query_id"], qid)
	}

	prof := findProfile(t, ts.URL, qid)
	if prof.Endpoint != "query" || prof.Status != "ok" {
		t.Fatalf("profile %+v: want endpoint=query status=ok", prof)
	}
	if prof.Spans == nil || prof.Spans.Find("scan") == nil {
		t.Fatalf("profile %s retained no span tree", qid)
	}

	// The cached repeat gets its own ID and a spanless cached profile.
	resp2, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	qid2 := resp2.Header.Get("X-Vida-Query-Id")
	if qid2 == "" || qid2 == qid {
		t.Fatalf("cached repeat query id %q (first was %q)", qid2, qid)
	}
	prof2 := findProfile(t, ts.URL, qid2)
	if !prof2.Cached || prof2.Spans != nil {
		t.Fatalf("cached profile %+v: want cached=true with no spans", prof2)
	}

	// Streams carry the header too, and settle their profile on release.
	sbody, _ := json.Marshal(map[string]any{"query": `for { p <- Patients } yield bag p.id`})
	resp3, err := http.Post(ts.URL+"/stream", "application/json", bytes.NewReader(sbody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	sid := resp3.Header.Get("X-Vida-Query-Id")
	if sid == "" {
		t.Fatal("no X-Vida-Query-Id header on /stream")
	}
	sprof := findProfile(t, ts.URL, sid)
	if sprof.Endpoint != "stream" || sprof.Status != "ok" {
		t.Fatalf("stream profile %+v: want endpoint=stream status=ok", sprof)
	}
}

// findProfile polls /debug/queries for the given query ID (stream
// profiles are recorded by a deferred release that can trail the
// response by a scheduling beat).
func findProfile(t *testing.T, url, id string) *serve.QueryProfile {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/debug/queries")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Queries  []*serve.QueryProfile `json:"queries"`
			Recorded int64                 `json:"recorded"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range out.Queries {
			if p.ID == id {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("profile %s never appeared in /debug/queries (%d recorded)", id, out.Recorded)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsStatsParity asserts the /stats↔/metrics bijection: every
// scalar in the /stats document maps to exactly one exposition series
// and every scalar series traces back to a /stats field, so the two
// surfaces cannot silently diverge.
func TestMetricsStatsParity(t *testing.T) {
	pool := sched.NewPool(2)
	t.Cleanup(pool.Close)
	eng := newTestEngine(t, pool)
	svc := serve.NewService(eng, pool, serve.Config{})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	t.Cleanup(ts.Close)

	// Touch the counters so the snapshot is non-trivial.
	if code, out := postQuery(t, ts.URL, "/query", `for { p <- Patients } yield count p`); code != http.StatusOK {
		t.Fatalf("warm-up query failed: %d %v", code, out)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	paths := map[string]bool{}
	var flatten func(prefix string, v any)
	flatten = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, sub := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				flatten(p, sub)
			}
		case float64, bool:
			paths[prefix] = true
		}
	}
	flatten("", stats)
	if !paths["scheduler.workers"] {
		t.Fatal("stats snapshot has no scheduler section despite an attached pool")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	body := string(mraw)
	families := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if f := strings.Fields(line); len(f) == 4 && f[0] == "#" && f[1] == "TYPE" {
			families[f[2]] = true
		}
	}

	statToMetric := map[string]string{}
	for _, m := range serve.MetricMappings() {
		if m.Stat != "" {
			if prev, dup := statToMetric[m.Stat]; dup {
				t.Errorf("stats field %s mapped by both %s and %s", m.Stat, prev, m.Name)
			}
			statToMetric[m.Stat] = m.Name
		}
		if !families[m.Name] {
			t.Errorf("metric %s declared but absent from /metrics", m.Name)
		}
	}
	for stat, series := range serve.HistogramStatMetricsForTest() {
		statToMetric[stat] = series
		if !strings.Contains(body, series) {
			t.Errorf("histogram series %s absent from /metrics", series)
		}
	}

	// Every /stats scalar has a /metrics counterpart.
	for p := range paths {
		if _, ok := statToMetric[p]; !ok {
			t.Errorf("stats field %s has no /metrics counterpart", p)
		}
	}
	// Every declared mapping still points at a live /stats field.
	for stat, name := range statToMetric {
		if !paths[stat] {
			t.Errorf("metric %s maps stale stats field %s", name, stat)
		}
	}
	// Every exposition family is accounted for: a scalar def or a
	// histogram.
	known := map[string]bool{}
	for _, m := range serve.MetricMappings() {
		known[m.Name] = true
	}
	for _, h := range serve.HistogramFamiliesForTest() {
		known[h] = true
	}
	for fam := range families {
		if !known[fam] {
			t.Errorf("metric family %s is not in the descriptor table", fam)
		}
	}
}

// TestPhaseAndRequestHistograms checks that executed queries land in
// the per-phase and per-endpoint histograms on /metrics.
func TestPhaseAndRequestHistograms(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	if code, out := postQuery(t, ts.URL, "/query", `for { p <- Patients, p.age > 40 } yield sum p.age`); code != http.StatusOK {
		t.Fatalf("query failed: %d %v", code, out)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, series := range []string{
		`vida_http_request_seconds_count{endpoint="query"}`,
		`vida_query_phase_seconds_count{phase="queue"}`,
		`vida_query_phase_seconds_count{phase="compile"}`,
		`vida_query_phase_seconds_count{phase="scan"}`,
		`vida_query_phase_seconds_count{phase="fold"}`,
	} {
		val, ok := seriesValue(body, series)
		if !ok {
			t.Fatalf("series %s absent from /metrics", series)
		}
		if val < 1 {
			t.Fatalf("series %s = %d, want >= 1", series, val)
		}
	}
}

// seriesValue extracts one integer sample from exposition text.
func seriesValue(body, series string) (int64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v int64
			if _, err := fmt.Sscanf(rest, "%d", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
