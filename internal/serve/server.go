package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"vida/internal/core"
)

// statusClientClosedRequest is nginx's convention for "the client went
// away before the response" — there is no standard code for it.
const statusClientClosedRequest = 499

// maxRequestBody bounds query request bodies (queries are text; 1 MiB is
// generous).
const maxRequestBody = 1 << 20

// Server is the HTTP front-end over a Service.
type Server struct {
	svc *Service
	mux *http.ServeMux
	srv *http.Server
}

// NewServer builds the front-end with all routes registered.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /query", s.handleQuery(false))
	s.mux.HandleFunc("POST /sql", s.handleQuery(true))
	s.mux.HandleFunc("GET /catalog", s.handleCatalog)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /explain", s.handleExplain)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Handler exposes the route table (tests mount it on httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.srv = &http.Server{Addr: addr, Handler: s.mux}
	err := s.srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting requests, waits (bounded by ctx) for handlers
// to return, then closes the engine so in-flight queries drain fully.
// The engine drain is also bounded by ctx: a query running with no
// timeout must not pin the process open forever.
func (s *Server) Shutdown(ctx context.Context) error {
	var httpErr error
	if s.srv != nil {
		httpErr = s.srv.Shutdown(ctx)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.svc.Close() }()
	select {
	case err := <-drained:
		if err != nil && httpErr == nil {
			httpErr = err
		}
	case <-ctx.Done():
		if httpErr == nil {
			httpErr = ctx.Err()
		}
	}
	return httpErr
}

// queryRequest is the body of POST /query and POST /sql.
type queryRequest struct {
	Query     string `json:"query"`
	TimeoutMS int64  `json:"timeout_ms"`
}

func (s *Server) handleQuery(sql bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
			return
		}
		var req queryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if req.Query == "" {
			writeError(w, http.StatusBadRequest, errors.New(`missing "query"`))
			return
		}
		timeout := time.Duration(req.TimeoutMS) * time.Millisecond
		var out *Outcome
		if sql {
			out, err = s.svc.QuerySQL(r.Context(), req.Query, timeout)
		} else {
			out, err = s.svc.Query(r.Context(), req.Query, timeout)
		}
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		buf := append([]byte(nil), `{"result":`...)
		buf = appendValueJSON(buf, out.Result.Value())
		buf = append(buf, `,"rows":`...)
		buf = fmt.Appendf(buf, "%d", out.Result.Len())
		buf = append(buf, `,"cached":`...)
		buf = fmt.Appendf(buf, "%t", out.Cached)
		buf = append(buf, `,"elapsed_ms":`...)
		buf = fmt.Appendf(buf, "%.3f", float64(out.Elapsed.Microseconds())/1000)
		buf = append(buf, '}', '\n')
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	}
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	eng := s.svc.Engine()
	type sourceInfo struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	names := eng.Sources()
	out := make([]sourceInfo, 0, len(names))
	for _, n := range names {
		info := sourceInfo{Name: n}
		if desc, ok := eng.Internal().Description(n); ok {
			info.Description = desc.String()
		}
		out = append(out, info)
	}
	writeJSON(w, map[string]any{"sources": out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"service": s.svc.StatsSnapshot(),
		"engine":  s.svc.Engine().Stats(),
	}
	if p := s.svc.Pool(); p != nil {
		resp["scheduler"] = p.StatsSnapshot()
	}
	writeJSON(w, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, errors.New(`missing "q" parameter`))
		return
	}
	if r.URL.Query().Get("sql") == "true" {
		comp, err := s.svc.Engine().TranslateSQL(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		q = comp
	}
	plan, err := s.svc.Engine().Explain(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{"plan": plan})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

// statusFor maps service errors onto HTTP statuses: frontend failures
// (the request's query is at fault) are 4xx, execution failures (the
// query was valid but the engine could not finish it — I/O errors,
// malformed source data with onerror=fail) are 5xx.
func statusFor(err error) int {
	var badQuery *BadQueryError
	switch {
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, core.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.As(err, &badQuery):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
