package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"time"

	"vida"
	"vida/internal/core"
)

// statusClientClosedRequest is nginx's convention for "the client went
// away before the response" — there is no standard code for it.
const statusClientClosedRequest = 499

// maxRequestBody bounds query request bodies (queries are text; 1 MiB is
// generous).
const maxRequestBody = 1 << 20

// Server is the HTTP front-end over a Service.
type Server struct {
	svc *Service
	mux *http.ServeMux
	srv *http.Server
}

// NewServer builds the front-end with all routes registered.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /query", s.timed(epQuery, s.handleQuery(false)))
	s.mux.HandleFunc("POST /sql", s.timed(epSQL, s.handleQuery(true)))
	s.mux.HandleFunc("POST /stream", s.timed(epStream, s.handleStream))
	s.mux.HandleFunc("GET /catalog", s.handleCatalog)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /explain", s.timed(epExplain, s.handleExplainGET))
	s.mux.HandleFunc("POST /explain", s.timed(epExplain, s.handleExplainPOST))
	s.mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// timed wraps a handler with the per-endpoint request-duration
// histogram and a debug-level structured request log.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		d := time.Since(start)
		s.svc.observeRequest(endpoint, d)
		slog.Debug("request served",
			"endpoint", endpoint, "method", r.Method, "duration_ms", durMS(d))
	}
}

// Handler exposes the route table wrapped in the panic-containment
// middleware (tests mount it on httptest.Server).
func (s *Server) Handler() http.Handler { return s.recoverWrap(s.mux) }

// recoverWrap is the handler-boundary panic barrier: a panicking handler
// becomes a 500 response (when no bytes have been written yet) plus a
// logged stack and a counter bump, instead of net/http tearing down the
// connection with an opaque empty reply. http.ErrAbortHandler is the
// sanctioned abort mechanism and is re-panicked untouched.
func (s *Server) recoverWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ww := &writeCapture{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.svc.panics.Add(1)
				slog.Error("recovered panic in HTTP handler",
					"component", "serve", "method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				if !ww.wrote {
					writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
				}
			}
		}()
		next.ServeHTTP(ww, r)
	})
}

// writeCapture tracks whether the handler already wrote anything, so the
// panic barrier knows if a 500 can still be sent.
type writeCapture struct {
	http.ResponseWriter
	wrote bool
}

func (c *writeCapture) WriteHeader(code int) { c.wrote = true; c.ResponseWriter.WriteHeader(code) }
func (c *writeCapture) Write(b []byte) (int, error) {
	c.wrote = true
	return c.ResponseWriter.Write(b)
}

// Flush keeps the stream path working through the wrapper.
func (c *writeCapture) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ListenAndServe serves on addr until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.srv = &http.Server{Addr: addr, Handler: s.Handler()}
	err := s.srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting requests, waits (bounded by ctx) for handlers
// to return, then closes the engine so in-flight queries drain fully.
// The engine drain is also bounded by ctx: a query running with no
// timeout must not pin the process open forever.
func (s *Server) Shutdown(ctx context.Context) error {
	var httpErr error
	if s.srv != nil {
		httpErr = s.srv.Shutdown(ctx)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.svc.Close() }()
	select {
	case err := <-drained:
		if err != nil && httpErr == nil {
			httpErr = err
		}
	case <-ctx.Done():
		if httpErr == nil {
			httpErr = ctx.Err()
		}
	}
	return httpErr
}

// queryRequest is the body of POST /query, POST /sql and POST /stream.
// Params may be a JSON array (positional bindings for $1..$n / ?) or an
// object (named bindings for $name); values are scalars.
type queryRequest struct {
	Query     string          `json:"query"`
	Params    json.RawMessage `json:"params"`
	SQL       bool            `json:"sql"`     // POST /stream and POST /explain
	Analyze   bool            `json:"analyze"` // POST /explain only
	TimeoutMS int64           `json:"timeout_ms"`
}

// decodeQueryRequest reads and validates a query request body.
func decodeQueryRequest(r *http.Request) (*queryRequest, []any, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody))
	if err != nil {
		return nil, nil, fmt.Errorf("reading body: %w", err)
	}
	var req queryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, fmt.Errorf("bad request body: %w", err)
	}
	if req.Query == "" {
		return nil, nil, errors.New(`missing "query"`)
	}
	args, err := parseParams(req.Params)
	if err != nil {
		return nil, nil, err
	}
	return &req, args, nil
}

// parseParams decodes the params field: an array binds positionally, an
// object by name. JSON numbers become int64 when integral (so $1 = 40
// compares as an int, not 40.0) and float64 otherwise.
func parseParams(raw json.RawMessage) ([]any, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	trimmed := bytes.TrimSpace(raw)
	switch {
	case trimmed[0] == '[':
		var arr []any
		if err := dec.Decode(&arr); err != nil {
			return nil, fmt.Errorf("bad params array: %w", err)
		}
		out := make([]any, len(arr))
		for i, v := range arr {
			p, err := normalizeParam(v)
			if err != nil {
				return nil, fmt.Errorf("param $%d: %w", i+1, err)
			}
			out[i] = p
		}
		return out, nil
	case trimmed[0] == '{':
		var obj map[string]any
		if err := dec.Decode(&obj); err != nil {
			return nil, fmt.Errorf("bad params object: %w", err)
		}
		names := make([]string, 0, len(obj))
		for name := range obj {
			if name == "" {
				return nil, errors.New("param names must be non-empty")
			}
			names = append(names, name)
		}
		sort.Strings(names)
		out := make([]any, 0, len(obj))
		for _, name := range names {
			p, err := normalizeParam(obj[name])
			if err != nil {
				return nil, fmt.Errorf("param $%s: %w", name, err)
			}
			out = append(out, vida.Named(name, p))
		}
		return out, nil
	}
	return nil, errors.New(`"params" must be a JSON array or object`)
}

// normalizeParam maps decoded JSON scalars onto engine-friendly types;
// nested arrays/objects are rejected here so a malformed request gets
// its 400 before reaching execution.
func normalizeParam(v any) (any, error) {
	switch n := v.(type) {
	case nil, bool, string:
		return v, nil
	case json.Number:
		if i, err := n.Int64(); err == nil {
			return i, nil
		}
		f, _ := n.Float64()
		return f, nil
	}
	return nil, fmt.Errorf("values must be scalars, got %T", v)
}

func (s *Server) handleQuery(sql bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, args, err := decodeQueryRequest(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		timeout := time.Duration(req.TimeoutMS) * time.Millisecond
		var out *Outcome
		if sql {
			out, err = s.svc.QuerySQL(r.Context(), req.Query, args, timeout)
		} else {
			out, err = s.svc.Query(r.Context(), req.Query, args, timeout)
		}
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		buf := append([]byte(nil), `{"result":`...)
		buf = appendValueJSON(buf, out.Result.Value())
		buf = append(buf, `,"rows":`...)
		buf = fmt.Appendf(buf, "%d", out.Result.Len())
		buf = append(buf, `,"cached":`...)
		buf = fmt.Appendf(buf, "%t", out.Cached)
		buf = append(buf, `,"elapsed_ms":`...)
		buf = fmt.Appendf(buf, "%.3f", float64(out.Elapsed.Microseconds())/1000)
		buf = append(buf, `,"query_id":`...)
		qid, _ := json.Marshal(out.QueryID)
		buf = append(buf, qid...)
		buf = append(buf, '}', '\n')
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Vida-Query-Id", out.QueryID)
		w.Write(buf)
	}
}

// streamFlushRows is the upper bound on rows written between flushes on
// the NDJSON stream. It is a backstop only: the stream also flushes at
// every cursor chunk boundary, so a slow trickling producer (cold scan,
// sparse matches) never sits on buffered rows while the engine works.
const streamFlushRows = 1024

// handleStream serves POST /stream: the query's rows as NDJSON, one
// JSON document per line, flushed batch-at-a-time straight off the
// engine's cursor — memory stays bounded no matter the result size
// (except set-monoid queries, whose streamed dedup state is O(distinct
// elements)), and the first rows reach the client while the scan is
// still running. The
// final line is a summary record {"done":true,"rows":N}; if the query
// dies mid-stream (timeout, disconnect, data error) the stream instead
// ends with a trailer-style error record {"error":...,"status":499|504|500}
// — the HTTP status line is long gone by then, so the error travels in
// band. Errors before the first row use the normal status codes.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	req, args, err := decodeQueryRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	rows, queryID, release, err := s.svc.QueryRows(r.Context(), req.Query, req.SQL, args, timeout)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer release()
	defer rows.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.Header().Set("X-Vida-Query-Id", queryID)
	flusher, _ := w.(http.Flusher)
	var buf []byte
	n := 0
	flush := func() bool {
		if len(buf) == 0 {
			return true
		}
		if _, err := w.Write(buf); err != nil {
			return false // client went away; rows.Close aborts the scan
		}
		buf = buf[:0]
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	pending := 0
	for rows.Next() {
		buf = rows.Value().AppendJSON(buf)
		buf = append(buf, '\n')
		n++
		pending++
		// Flush whenever the producer chunk is drained (the next Next
		// would block on the engine) and as a backstop every
		// streamFlushRows rows — first-row latency matches the cursor's.
		if (rows.ChunkBoundary() || pending >= streamFlushRows) && pending > 0 {
			if !flush() {
				return
			}
			pending = 0
		}
	}
	if err := rows.Err(); err != nil {
		// json.Marshal (not %q) keeps the trailer valid JSON even when
		// the error message carries control bytes or invalid UTF-8.
		msg, _ := json.Marshal(err.Error())
		buf = append(buf, `{"error":`...)
		buf = append(buf, msg...)
		buf = fmt.Appendf(buf, `,"status":%d}`+"\n", statusFor(err))
		flush()
		return
	}
	buf = fmt.Appendf(buf, `{"done":true,"rows":%d}`+"\n", n)
	flush()
}

// handleMetrics serves GET /metrics in Prometheus text exposition
// format, driven by the metricDefs descriptor table (metrics.go) plus
// the admission-wait, per-endpoint and per-phase histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	v := &statsView{svc: s.svc.StatsSnapshot(), eng: s.svc.Engine().Stats()}
	if p := s.svc.Pool(); p != nil {
		v.pool, v.hasPool = p.StatsSnapshot(), true
	}

	var b []byte
	for _, d := range metricDefs {
		if d.sched && !v.hasPool {
			continue
		}
		b = fmt.Appendf(b, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			d.name, d.help, d.name, d.kind, d.name, d.value(v))
	}

	// Admission-wait histogram in standard exposition shape.
	cum, waitSum, waitCount := s.svc.admit.WaitStats()
	b = appendHistHeader(b, "vida_serve_queue_wait_seconds", "Time requests spent waiting for an admission slot.")
	b = appendHistSeries(b, "vida_serve_queue_wait_seconds", "", cum, waitSum, waitCount)

	// Per-endpoint HTTP request durations.
	b = appendHistHeader(b, "vida_http_request_seconds", "HTTP request wall time by endpoint.")
	for _, ep := range endpointOrder {
		cum, sum, count := s.svc.reqHists[ep].stats()
		b = appendHistSeries(b, "vida_http_request_seconds", fmt.Sprintf("endpoint=%q", ep), cum, sum, count)
	}

	// Per-phase query execution times, rolled up from span trees.
	b = appendHistHeader(b, "vida_query_phase_seconds", "Per-phase query execution time rolled up from span trees.")
	for ph := range numPhases {
		cum, sum, count := s.svc.phases[ph].stats()
		b = appendHistSeries(b, "vida_query_phase_seconds", fmt.Sprintf("phase=%q", phaseNames[ph]), cum, sum, count)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b)
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	eng := s.svc.Engine()
	type sourceInfo struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	names := eng.Sources()
	out := make([]sourceInfo, 0, len(names))
	for _, n := range names {
		info := sourceInfo{Name: n}
		if desc, ok := eng.Internal().Description(n); ok {
			info.Description = desc.String()
		}
		out = append(out, info)
	}
	writeJSON(w, map[string]any{"sources": out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"service": s.svc.StatsSnapshot(),
		"engine":  s.svc.Engine().Stats(),
	}
	if p := s.svc.Pool(); p != nil {
		resp["scheduler"] = p.StatsSnapshot()
	}
	writeJSON(w, resp)
}

// handleExplainGET serves GET /explain?q=...&sql=true&analyze=true:
// plan-only by default, plan + executed span tree with analyze=true.
func (s *Server) handleExplainGET(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, errors.New(`missing "q" parameter`))
		return
	}
	sql := r.URL.Query().Get("sql") == "true"
	analyze := r.URL.Query().Get("analyze") == "true"
	s.explain(w, r, q, sql, analyze, nil, 0)
}

// handleExplainPOST serves POST /explain with the query-request body
// ({"query":..., "sql":..., "analyze":..., "params":..., "timeout_ms":...}),
// so analyzed queries can bind parameters like /query does.
func (s *Server) handleExplainPOST(w http.ResponseWriter, r *http.Request) {
	req, args, err := decodeQueryRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	s.explain(w, r, req.Query, req.SQL, req.Analyze, args, timeout)
}

func (s *Server) explain(w http.ResponseWriter, r *http.Request, q string, sql, analyze bool, args []any, timeout time.Duration) {
	if !analyze {
		if sql {
			comp, err := s.svc.Engine().TranslateSQL(q)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			q = comp
		}
		plan, err := s.svc.Engine().Explain(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{"plan": plan})
		return
	}
	a, err := s.svc.ExplainAnalyze(r.Context(), q, sql, args, timeout)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("X-Vida-Query-Id", a.QueryID)
	writeJSON(w, a)
}

// handleDebugQueries serves GET /debug/queries: the ring of recently
// completed query profiles (span trees included), newest first, keyed
// by the same IDs the X-Vida-Query-Id response header carries.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	profiles, total := s.svc.Profiles()
	writeJSON(w, map[string]any{"queries": profiles, "recorded": total})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

// statusFor maps service errors onto HTTP statuses: frontend failures
// (the request's query is at fault) are 4xx, execution failures (the
// query was valid but the engine could not finish it — I/O errors,
// malformed source data with onerror=fail) are 5xx.
func statusFor(err error) int {
	var badQuery *BadQueryError
	var badParam *core.ParamError
	switch {
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrMemoryBudget):
		// 507 Insufficient Storage: the query was valid but exceeded its
		// memory budget (or the global one); retrying as-is will not help
		// unless load drops, which distinguishes it from a plain 500.
		return http.StatusInsufficientStorage
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, core.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.As(err, &badQuery), errors.As(err, &badParam):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	var busy *BusyError
	if errors.As(err, &busy) {
		// Whole seconds, rounded up, at least 1 — the header has no
		// sub-second granularity.
		secs := int64((busy.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
