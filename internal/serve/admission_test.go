package serve

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmitFastPath: free slots admit immediately, and every Release
// returns the slot.
func TestAdmitFastPath(t *testing.T) {
	q := newAdmitQueue(2, 4)
	ctx := context.Background()
	if err := q.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := q.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := q.InUse(); got != 2 {
		t.Fatalf("InUse = %d, want 2", got)
	}
	q.Release()
	q.Release()
	if got := q.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
}

// TestAdmitFIFOOrder: queued waiters are granted strictly in arrival
// order as slots free up.
func TestAdmitFIFOOrder(t *testing.T) {
	q := newAdmitQueue(1, 8)
	ctx := context.Background()
	if err := q.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	const n = 5
	grants := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Enqueue one waiter at a time so arrival order is deterministic.
		before := q.Depth()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := q.Acquire(ctx); err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			grants <- id
			q.Release()
		}(i)
		waitFor(t, func() bool { return q.Depth() == before+1 })
	}

	q.Release() // hand the held slot to waiter 0; the rest cascade
	wg.Wait()
	close(grants)
	want := 0
	for id := range grants {
		if id != want {
			t.Fatalf("grant order: got waiter %d, want %d", id, want)
		}
		want++
	}
	if q.InUse() != 0 || q.Depth() != 0 {
		t.Fatalf("after drain: InUse=%d Depth=%d, want 0/0", q.InUse(), q.Depth())
	}
}

// TestAdmitQueueFullSheds: a full queue sheds with a BusyError that
// matches ErrBusy.
func TestAdmitQueueFullSheds(t *testing.T) {
	q := newAdmitQueue(1, 2)
	ctx := context.Background()
	if err := q.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for i := 0; i < 2; i++ {
		go q.Acquire(cctx) //nolint:errcheck — cancelled at test end
	}
	waitFor(t, func() bool { return q.Depth() == 2 })

	err := q.Acquire(ctx)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	var busy *BusyError
	if !errors.As(err, &busy) || busy.Reason != "admission queue full" {
		t.Fatalf("err = %#v, want BusyError{Reason: queue full}", err)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", busy.RetryAfter)
	}
}

// TestAdmitFailFast: maxQueue 0 restores the old semaphore behaviour.
func TestAdmitFailFast(t *testing.T) {
	q := newAdmitQueue(1, 0)
	if err := q.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.Acquire(context.Background()); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want immediate ErrBusy", err)
	}
}

// TestAdmitDeadlineShedsUpfront: a request whose deadline is already
// past — or provably unreachable at the observed drain rate — is shed
// without ever occupying queue space.
func TestAdmitDeadlineShedsUpfront(t *testing.T) {
	q := newAdmitQueue(1, 8)
	if err := q.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := q.Acquire(expired); !errors.Is(err, ErrBusy) {
		t.Fatalf("expired deadline: err = %v, want ErrBusy shed", err)
	}

	// With drain history saying a slot frees every ~1s, a 10ms deadline
	// cannot be met.
	q.mu.Lock()
	q.drainEWMA = time.Second
	q.mu.Unlock()
	short, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	err := q.Acquire(short)
	var busy *BusyError
	if !errors.As(err, &busy) || busy.Reason != "deadline before slot" {
		t.Fatalf("err = %v, want deadline-before-slot shed", err)
	}
	if q.Depth() != 0 {
		t.Fatalf("shed request left a waiter queued (depth %d)", q.Depth())
	}
}

// TestAdmitDeadlineWhileQueued: a deadline that expires in the queue is
// a shed (BusyError → 429), not a bare context error.
func TestAdmitDeadlineWhileQueued(t *testing.T) {
	q := newAdmitQueue(1, 8)
	if err := q.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := q.Acquire(ctx)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if q.Depth() != 0 {
		t.Fatalf("timed-out waiter still queued (depth %d)", q.Depth())
	}
}

// TestAdmitCancelWhileQueued: a client that goes away while queued gets
// its context error (→ 499) and leaves no waiter behind.
func TestAdmitCancelWhileQueued(t *testing.T) {
	q := newAdmitQueue(1, 8)
	if err := q.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.Acquire(ctx) }()
	waitFor(t, func() bool { return q.Depth() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if q.Depth() != 0 {
		t.Fatalf("cancelled waiter still queued (depth %d)", q.Depth())
	}
	// The held slot is still accounted for — cancellation must not have
	// minted a phantom free slot.
	if q.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", q.InUse())
	}
}

// TestAdmitSlotConservationUnderChurn hammers the queue with a mix of
// successful acquires, cancellations and deadline expiries racing slot
// grants, then checks the books: no slot leaked, no slot minted, no
// waiter stranded.
func TestAdmitSlotConservationUnderChurn(t *testing.T) {
	q := newAdmitQueue(4, 16)
	var wg sync.WaitGroup
	var held atomic.Int64
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			ctx := context.Background()
			cancel := context.CancelFunc(func() {})
			switch i % 3 {
			case 1:
				ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
			case 2:
				ctx, cancel = context.WithCancel(ctx)
				delay := time.Duration(rng.Intn(2)) * time.Millisecond
				go func() {
					time.Sleep(delay)
					cancel()
				}()
			}
			defer cancel()
			if err := q.Acquire(ctx); err != nil {
				return // shed or cancelled: fine, must not hold a slot
			}
			if n := held.Add(1); n > 4 {
				t.Errorf("held %d slots concurrently, capacity 4", n)
			}
			time.Sleep(time.Duration(rng.Intn(2)) * time.Millisecond)
			held.Add(-1)
			q.Release()
		}(i)
	}
	wg.Wait()
	if q.InUse() != 0 {
		t.Fatalf("slots leaked: InUse = %d after all callers finished", q.InUse())
	}
	if q.Depth() != 0 {
		t.Fatalf("waiters stranded: Depth = %d", q.Depth())
	}
	// Every slot is usable again, and exactly capacity slots exist: the
	// 4 acquires below succeed instantly, a 5th would have to queue.
	for i := 0; i < 4; i++ {
		if err := q.Acquire(context.Background()); err != nil {
			t.Fatalf("slot %d unusable after churn: %v", i, err)
		}
	}
	if got := q.InUse(); got != 4 {
		t.Fatalf("InUse = %d, want 4 (no phantom slots minted)", got)
	}
}

// TestAdmitWaitHistogram: waits land in the histogram and the cumulative
// view is monotone with the +Inf bucket equal to the count.
func TestAdmitWaitHistogram(t *testing.T) {
	q := newAdmitQueue(1, 8)
	if err := q.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- q.Acquire(context.Background()) }()
	waitFor(t, func() bool { return q.Depth() == 1 })
	time.Sleep(5 * time.Millisecond)
	q.Release()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	q.Release()
	cum, sum, count := q.WaitStats()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (fast path + queued)", count)
	}
	if cum[len(cum)-1] != count {
		t.Fatalf("+Inf bucket %d != count %d", cum[len(cum)-1], count)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative histogram not monotone: %v", cum)
		}
	}
	if sum < 5*time.Millisecond {
		t.Fatalf("wait sum = %v, want >= 5ms", sum)
	}
}

// TestRecoverWrapContainsPanic: a panicking handler becomes a 500 and a
// counted, logged event — not a torn connection.
func TestRecoverWrapContainsPanic(t *testing.T) {
	s := &Server{svc: &Service{}}
	h := s.recoverWrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if got := s.svc.panics.Load(); got != 1 {
		t.Fatalf("panics = %d, want 1", got)
	}

	// A handler that already streamed bytes cannot get a 500; the panic
	// is still contained and counted.
	h2 := s.recoverWrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("partial"))
		panic("late boom")
	}))
	rec2 := httptest.NewRecorder()
	h2.ServeHTTP(rec2, httptest.NewRequest("GET", "/x", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("mid-stream panic rewrote status to %d", rec2.Code)
	}
	if got := s.svc.panics.Load(); got != 2 {
		t.Fatalf("panics = %d, want 2", got)
	}

	// http.ErrAbortHandler is the sanctioned abort and passes through.
	h3 := s.recoverWrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if r := recover(); r != http.ErrAbortHandler {
				t.Fatalf("recovered %v, want http.ErrAbortHandler re-panicked", r)
			}
		}()
		h3.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}()
	if got := s.svc.panics.Load(); got != 2 {
		t.Fatalf("ErrAbortHandler was counted as a contained panic (%d)", got)
	}
}

// waitFor polls cond until it holds or the test deadline budget burns.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
