package serve_test

// Tests for grouped aggregation at the HTTP surface: the buffered /sql
// and streaming /stream endpoints must agree on GROUP BY + HAVING
// results, EXPLAIN ANALYZE must expose the grouped fold's span, the
// group counters must reach /metrics, and a group table that outgrows
// the query memory budget must die with a typed 507 without wedging the
// server.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vida"
	"vida/internal/serve"
	"vida/internal/trace"
)

const groupSQL = `SELECT p.city, COUNT(*) AS n, AVG(p.age) AS a
    FROM Patients p GROUP BY p.city HAVING COUNT(*) > 10 ORDER BY p.city`

// streamRowsSQL posts a SQL query to /stream and returns its NDJSON row
// objects (excluding the done record).
func streamRowsSQL(t *testing.T, url, sql string) []any {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": sql, "sql": true})
	resp, err := http.Post(url+"/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("/stream status %d: %s", resp.StatusCode, raw)
	}
	var rows []any
	sc := bufio.NewScanner(resp.Body)
	done := false
	for sc.Scan() {
		var msg map[string]any
		if err := json.Unmarshal(sc.Bytes(), &msg); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if errMsg, ok := msg["error"]; ok {
			t.Fatalf("stream error record: %v", errMsg)
		}
		if _, ok := msg["done"]; ok {
			done = true
			break
		}
		var row any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if !done {
		t.Fatal("stream did not end with a done record")
	}
	return rows
}

// TestGroupBySQLAndStreamAgree: the same GROUP BY + HAVING query through
// the buffered /sql endpoint and the NDJSON /stream endpoint produces
// identical groups in identical order.
func TestGroupBySQLAndStreamAgree(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})

	status, body := postRaw(t, ts.URL, "/sql", map[string]any{"query": groupSQL})
	if status != http.StatusOK {
		t.Fatalf("/sql status %d: %s", status, body)
	}
	var buffered struct {
		Result []any `json:"result"`
	}
	if err := json.Unmarshal(body, &buffered); err != nil {
		t.Fatal(err)
	}
	if len(buffered.Result) == 0 {
		t.Fatal("grouped /sql query returned no groups")
	}
	total := 0.0
	for _, row := range buffered.Result {
		n := row.(map[string]any)["n"].(float64)
		if n <= 10 {
			t.Fatalf("HAVING leak: group with n=%v survived", n)
		}
		total += n
	}
	if total > 900 {
		t.Fatalf("group counts sum to %v, more rows than the source has", total)
	}

	streamed := streamRowsSQL(t, ts.URL, groupSQL)
	if len(streamed) != len(buffered.Result) {
		t.Fatalf("stream rows = %d, buffered = %d", len(streamed), len(buffered.Result))
	}
	for i := range streamed {
		if canonical(t, streamed[i]) != canonical(t, buffered.Result[i]) {
			t.Fatalf("row %d: stream %s != buffered %s",
				i, canonical(t, streamed[i]), canonical(t, buffered.Result[i]))
		}
	}
}

// TestExplainAnalyzeGroupedFold: EXPLAIN ANALYZE over a grouped SQL
// query exposes the hash-aggregation fold as a span with its group
// statistics, and the engine's group counters surface on /metrics.
func TestExplainAnalyzeGroupedFold(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})

	body, _ := json.Marshal(map[string]any{"query": groupSQL, "sql": true, "analyze": true})
	resp, err := http.Post(ts.URL+"/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Spans *trace.SpanNode `json:"spans"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad analyze response %s: %v", raw, err)
	}
	if out.Spans == nil {
		t.Fatal("analyze returned no span tree")
	}
	var fold *trace.SpanNode
	var walk func(n *trace.SpanNode)
	walk = func(n *trace.SpanNode) {
		if n == nil {
			return
		}
		if n.Name == "fold" && n.Attrs["kind"] == "groupagg" {
			fold = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(out.Spans)
	if fold == nil {
		t.Fatalf("span tree has no groupagg fold:\n%s", raw)
	}
	if fold.Attrs["groups"] == nil || fold.Attrs["table_bytes"] == nil {
		t.Fatalf("groupagg fold span missing stats: %v", fold.Attrs)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, name := range []string{
		"vida_group_folds_total", "vida_groups_built_total",
		"vida_group_table_max_bytes", "vida_group_partial_merges_total",
	} {
		if !strings.Contains(string(metrics), name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
	if !groupMetricPositive(t, metrics, "vida_group_folds_total") {
		t.Fatal("vida_group_folds_total did not count the grouped query")
	}
	if !groupMetricPositive(t, metrics, "vida_groups_built_total") {
		t.Fatal("vida_groups_built_total did not count the built groups")
	}
}

// groupMetricPositive reports whether the named /metrics series carries
// a value greater than zero.
func groupMetricPositive(t *testing.T, metrics []byte, name string) bool {
	t.Helper()
	for _, line := range strings.Split(string(metrics), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		val := strings.TrimSpace(strings.TrimPrefix(line, name))
		return val != "0" && val != "0.0"
	}
	t.Fatalf("metric %s has no sample line", name)
	return false
}

// TestGroupByMemoryBudget507: a high-cardinality GROUP BY whose group
// table outgrows the per-query memory budget dies with HTTP 507 — and
// the failure is fully contained: the admission slot is released, the
// engine keeps answering, and the failed query is not served from a
// poisoned cache on retry.
func TestGroupByMemoryBudget507(t *testing.T) {
	eng := newTestEngine(t, nil, vida.WithQueryMemoryBudget(2<<10))
	// MaxInFlight 1 with queueing disabled: a leaked admission slot
	// would turn every follow-up request into a 429.
	svc := serve.NewService(eng, nil, serve.Config{MaxInFlight: 1, MaxQueue: -1})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()

	// 900 distinct group keys: the group table alone far exceeds 2 KiB.
	const bigGroup = `SELECT p.id, COUNT(*) AS n, AVG(p.age) AS a FROM Patients p GROUP BY p.id`

	status, body := postRaw(t, ts.URL, "/sql", map[string]any{"query": bigGroup})
	if status != http.StatusInsufficientStorage {
		t.Fatalf("high-cardinality GROUP BY under 2KiB budget: status %d (%s), want 507", status, body)
	}
	if !strings.Contains(string(body), "memory budget") {
		t.Fatalf("507 body does not name the budget: %s", body)
	}

	// The slot was released and the engine keeps serving queries that
	// stay inside the budget.
	status, body = postRaw(t, ts.URL, "/sql", map[string]any{"query": "SELECT COUNT(*) FROM Patients"})
	if status != http.StatusOK {
		t.Fatalf("engine unusable after group-table memory kill: status %d (%s)", status, body)
	}

	// Retrying the killed query is not served a bogus cached result: it
	// dies on the budget again.
	status, body = postRaw(t, ts.URL, "/sql", map[string]any{"query": bigGroup})
	if status != http.StatusInsufficientStorage {
		t.Fatalf("retried GROUP BY: status %d (%s), want 507 again", status, body)
	}

	// The kill is counted.
	stats := eng.Stats()
	if stats.Memory.QueryKills < 2 {
		t.Fatalf("QueryKills = %d, want >= 2", stats.Memory.QueryKills)
	}
}
