package monoid

import (
	"fmt"
	"strconv"
	"strings"

	"vida/internal/values"
)

// Monoid is one accumulator usable as the ⊕ of a comprehension.
type Monoid interface {
	// Name returns the keyword used after "yield".
	Name() string
	// Zero returns Z⊕, the left and right identity of Merge.
	Zero() values.Value
	// Unit lifts one head value into the accumulation domain (U⊕).
	Unit(v values.Value) values.Value
	// Merge combines two accumulated values (⊕). It must be associative
	// with Zero as identity over the accumulation domain.
	Merge(a, b values.Value) values.Value
	// Finalize maps the accumulated value to the user-visible result.
	// For true monoids this is the identity.
	Finalize(acc values.Value) values.Value
	// Commutative reports whether Merge commutes; the optimizer may only
	// reorder inputs for commutative monoids.
	Commutative() bool
	// Idempotent reports whether x⊕x = x; duplicate-insensitive monoids
	// (set, max, min, and, or) admit more aggressive rewrites.
	Idempotent() bool
}

// ---------------------------------------------------------------------------
// Primitive numeric monoids
// ---------------------------------------------------------------------------

type sumMonoid struct{}

func (sumMonoid) Name() string                         { return "sum" }
func (sumMonoid) Zero() values.Value                   { return values.NewInt(0) }
func (sumMonoid) Commutative() bool                    { return true }
func (sumMonoid) Idempotent() bool                     { return false }
func (sumMonoid) Unit(v values.Value) values.Value     { return v }
func (sumMonoid) Finalize(a values.Value) values.Value { return a }
func (sumMonoid) Merge(a, b values.Value) values.Value { return numAdd(a, b) }

type prodMonoid struct{}

func (prodMonoid) Name() string                         { return "prod" }
func (prodMonoid) Zero() values.Value                   { return values.NewInt(1) }
func (prodMonoid) Commutative() bool                    { return true }
func (prodMonoid) Idempotent() bool                     { return false }
func (prodMonoid) Unit(v values.Value) values.Value     { return v }
func (prodMonoid) Finalize(a values.Value) values.Value { return a }
func (prodMonoid) Merge(a, b values.Value) values.Value {
	if a.Kind() == values.KindInt && b.Kind() == values.KindInt {
		return values.NewInt(a.Int() * b.Int())
	}
	return values.NewFloat(a.Float() * b.Float())
}

type countMonoid struct{}

func (countMonoid) Name() string                         { return "count" }
func (countMonoid) Zero() values.Value                   { return values.NewInt(0) }
func (countMonoid) Commutative() bool                    { return true }
func (countMonoid) Idempotent() bool                     { return false }
func (countMonoid) Unit(values.Value) values.Value       { return values.NewInt(1) }
func (countMonoid) Finalize(a values.Value) values.Value { return a }
func (countMonoid) Merge(a, b values.Value) values.Value {
	return values.NewInt(a.Int() + b.Int())
}

type maxMonoid struct{}

func (maxMonoid) Name() string                         { return "max" }
func (maxMonoid) Zero() values.Value                   { return values.Null }
func (maxMonoid) Commutative() bool                    { return true }
func (maxMonoid) Idempotent() bool                     { return true }
func (maxMonoid) Unit(v values.Value) values.Value     { return v }
func (maxMonoid) Finalize(a values.Value) values.Value { return a }
func (maxMonoid) Merge(a, b values.Value) values.Value {
	switch {
	case a.IsNull():
		return b
	case b.IsNull():
		return a
	case values.Compare(a, b) >= 0:
		return a
	}
	return b
}

type minMonoid struct{}

func (minMonoid) Name() string                         { return "min" }
func (minMonoid) Zero() values.Value                   { return values.Null }
func (minMonoid) Commutative() bool                    { return true }
func (minMonoid) Idempotent() bool                     { return true }
func (minMonoid) Unit(v values.Value) values.Value     { return v }
func (minMonoid) Finalize(a values.Value) values.Value { return a }
func (minMonoid) Merge(a, b values.Value) values.Value {
	switch {
	case a.IsNull():
		return b
	case b.IsNull():
		return a
	case values.Compare(a, b) <= 0:
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Boolean monoids (universal and existential quantification, paper §3.2)
// ---------------------------------------------------------------------------

type andMonoid struct{}

func (andMonoid) Name() string                         { return "and" }
func (andMonoid) Zero() values.Value                   { return values.True }
func (andMonoid) Commutative() bool                    { return true }
func (andMonoid) Idempotent() bool                     { return true }
func (andMonoid) Unit(v values.Value) values.Value     { return v }
func (andMonoid) Finalize(a values.Value) values.Value { return a }
func (andMonoid) Merge(a, b values.Value) values.Value {
	return values.NewBool(a.Bool() && b.Bool())
}

type orMonoid struct{}

func (orMonoid) Name() string                         { return "or" }
func (orMonoid) Zero() values.Value                   { return values.False }
func (orMonoid) Commutative() bool                    { return true }
func (orMonoid) Idempotent() bool                     { return true }
func (orMonoid) Unit(v values.Value) values.Value     { return v }
func (orMonoid) Finalize(a values.Value) values.Value { return a }
func (orMonoid) Merge(a, b values.Value) values.Value {
	return values.NewBool(a.Bool() || b.Bool())
}

// ---------------------------------------------------------------------------
// Derived accumulators: avg, median, top-k
// ---------------------------------------------------------------------------

// avgMonoid accumulates a (sum, count) record and finalizes to the mean.
type avgMonoid struct{}

func (avgMonoid) Name() string      { return "avg" }
func (avgMonoid) Commutative() bool { return true }
func (avgMonoid) Idempotent() bool  { return false }
func (avgMonoid) Zero() values.Value {
	return values.NewRecord(
		values.Field{Name: "sum", Val: values.NewFloat(0)},
		values.Field{Name: "count", Val: values.NewInt(0)},
	)
}
func (avgMonoid) Unit(v values.Value) values.Value {
	return values.NewRecord(
		values.Field{Name: "sum", Val: values.NewFloat(v.Float())},
		values.Field{Name: "count", Val: values.NewInt(1)},
	)
}
func (avgMonoid) Merge(a, b values.Value) values.Value {
	return values.NewRecord(
		values.Field{Name: "sum", Val: values.NewFloat(a.MustGet("sum").Float() + b.MustGet("sum").Float())},
		values.Field{Name: "count", Val: values.NewInt(a.MustGet("count").Int() + b.MustGet("count").Int())},
	)
}
func (avgMonoid) Finalize(a values.Value) values.Value {
	n := a.MustGet("count").Int()
	if n == 0 {
		return values.Null
	}
	return values.NewFloat(a.MustGet("sum").Float() / float64(n))
}

// medianMonoid accumulates a sorted bag and finalizes to the middle element
// (mean of the two middles for even counts).
type medianMonoid struct{}

func (medianMonoid) Name() string                     { return "median" }
func (medianMonoid) Commutative() bool                { return true }
func (medianMonoid) Idempotent() bool                 { return false }
func (medianMonoid) Zero() values.Value               { return values.NewBag() }
func (medianMonoid) Unit(v values.Value) values.Value { return values.NewBag(v) }
func (medianMonoid) Merge(a, b values.Value) values.Value {
	out := a
	for _, e := range b.Elems() {
		out = out.Append(e)
	}
	return out
}
func (medianMonoid) Finalize(a values.Value) values.Value {
	es := a.Elems()
	n := len(es)
	if n == 0 {
		return values.Null
	}
	if n%2 == 1 {
		return es[n/2]
	}
	return values.NewFloat((es[n/2-1].Float() + es[n/2].Float()) / 2)
}

// topKMonoid keeps the k largest values (by values.Compare) seen so far.
// It is the degenerate form of the keyed TopKAcc accumulator (topk.go):
// one key, the element itself, descending.
type topKMonoid struct{ k int }

func (m topKMonoid) Name() string                     { return "top" + strconv.Itoa(m.k) }
func (m topKMonoid) Commutative() bool                { return true }
func (m topKMonoid) Idempotent() bool                 { return false }
func (m topKMonoid) Zero() values.Value               { return values.NewList() }
func (m topKMonoid) Unit(v values.Value) values.Value { return values.NewList(v) }
func (m topKMonoid) Merge(a, b values.Value) values.Value {
	acc := NewTopKAcc([]bool{true}, m.k)
	for _, v := range a.Elems() {
		acc.Add([]values.Value{v}, v)
	}
	for _, v := range b.Elems() {
		acc.Add([]values.Value{v}, v)
	}
	return values.NewList(acc.Finalize(0, m.k, false)...)
}
func (m topKMonoid) Finalize(a values.Value) values.Value { return a }

// ---------------------------------------------------------------------------
// Collection monoids
// ---------------------------------------------------------------------------

type listMonoid struct{}

func (listMonoid) Name() string                         { return "list" }
func (listMonoid) Zero() values.Value                   { return values.NewList() }
func (listMonoid) Commutative() bool                    { return false }
func (listMonoid) Idempotent() bool                     { return false }
func (listMonoid) Unit(v values.Value) values.Value     { return values.NewList(v) }
func (listMonoid) Finalize(a values.Value) values.Value { return a }
func (listMonoid) Merge(a, b values.Value) values.Value {
	out := make([]values.Value, 0, a.Len()+b.Len())
	out = append(out, a.Elems()...)
	out = append(out, b.Elems()...)
	return values.NewList(out...)
}

type bagMonoid struct{}

func (bagMonoid) Name() string                         { return "bag" }
func (bagMonoid) Zero() values.Value                   { return values.NewBag() }
func (bagMonoid) Commutative() bool                    { return true }
func (bagMonoid) Idempotent() bool                     { return false }
func (bagMonoid) Unit(v values.Value) values.Value     { return values.NewBag(v) }
func (bagMonoid) Finalize(a values.Value) values.Value { return a }
func (bagMonoid) Merge(a, b values.Value) values.Value {
	out := make([]values.Value, 0, a.Len()+b.Len())
	out = append(out, a.Elems()...)
	out = append(out, b.Elems()...)
	return values.NewBag(out...)
}

type setMonoid struct{}

func (setMonoid) Name() string                         { return "set" }
func (setMonoid) Zero() values.Value                   { return values.NewSet() }
func (setMonoid) Commutative() bool                    { return true }
func (setMonoid) Idempotent() bool                     { return true }
func (setMonoid) Unit(v values.Value) values.Value     { return values.NewSet(v) }
func (setMonoid) Finalize(a values.Value) values.Value { return a }
func (setMonoid) Merge(a, b values.Value) values.Value {
	out := make([]values.Value, 0, a.Len()+b.Len())
	out = append(out, a.Elems()...)
	out = append(out, b.Elems()...)
	return values.NewSet(out...)
}

// arrayMonoid concatenates one-dimensional arrays; it supports yielding
// vector results that downstream consumers reshape.
type arrayMonoid struct{}

func (arrayMonoid) Name() string       { return "array" }
func (arrayMonoid) Commutative() bool  { return false }
func (arrayMonoid) Idempotent() bool   { return false }
func (arrayMonoid) Zero() values.Value { return values.NewArray([]int{0}, nil) }
func (arrayMonoid) Unit(v values.Value) values.Value {
	return values.NewArray([]int{1}, []values.Value{v})
}
func (arrayMonoid) Finalize(a values.Value) values.Value { return a }
func (arrayMonoid) Merge(a, b values.Value) values.Value {
	out := make([]values.Value, 0, a.Len()+b.Len())
	out = append(out, a.Elems()...)
	out = append(out, b.Elems()...)
	return values.NewArray([]int{len(out)}, out)
}

// ---------------------------------------------------------------------------
// Helpers and registry
// ---------------------------------------------------------------------------

func numAdd(a, b values.Value) values.Value {
	if a.Kind() == values.KindInt && b.Kind() == values.KindInt {
		return values.NewInt(a.Int() + b.Int())
	}
	return values.NewFloat(a.Float() + b.Float())
}

// Exported singleton monoids.
var (
	Sum    Monoid = sumMonoid{}
	Prod   Monoid = prodMonoid{}
	Count  Monoid = countMonoid{}
	Max    Monoid = maxMonoid{}
	Min    Monoid = minMonoid{}
	And    Monoid = andMonoid{}
	Or     Monoid = orMonoid{}
	Avg    Monoid = avgMonoid{}
	Median Monoid = medianMonoid{}
	List   Monoid = listMonoid{}
	Bag    Monoid = bagMonoid{}
	Set    Monoid = setMonoid{}
	Array  Monoid = arrayMonoid{}
)

// TopK returns the top-k accumulator for the given k.
func TopK(k int) Monoid { return topKMonoid{k: k} }

// IsCollection reports whether m builds a collection (list/bag/set/array)
// rather than a scalar aggregate.
func IsCollection(m Monoid) bool {
	switch m.Name() {
	case "list", "bag", "set", "array":
		return true
	}
	return false
}

// CollectionKind returns the values.Kind a collection monoid produces.
func CollectionKind(m Monoid) (values.Kind, bool) {
	switch m.Name() {
	case "list":
		return values.KindList, true
	case "bag":
		return values.KindBag, true
	case "set":
		return values.KindSet, true
	case "array":
		return values.KindArray, true
	}
	return 0, false
}

// ByName resolves a monoid keyword ("sum", "set", "top5", ...).
func ByName(name string) (Monoid, error) {
	switch strings.ToLower(name) {
	case "sum":
		return Sum, nil
	case "prod", "product":
		return Prod, nil
	case "count":
		return Count, nil
	case "max":
		return Max, nil
	case "min":
		return Min, nil
	case "and", "all":
		return And, nil
	case "or", "some", "exists":
		return Or, nil
	case "avg", "average", "mean":
		return Avg, nil
	case "median":
		return Median, nil
	case "list":
		return List, nil
	case "bag":
		return Bag, nil
	case "set":
		return Set, nil
	case "array":
		return Array, nil
	}
	if strings.HasPrefix(strings.ToLower(name), "top") {
		if k, err := strconv.Atoi(name[3:]); err == nil && k > 0 {
			return TopK(k), nil
		}
	}
	return nil, fmt.Errorf("monoid: unknown monoid %q", name)
}

// Fold accumulates a stream of head values under m and finalizes. It is
// the reference (unoptimized) comprehension evaluator used by tests and by
// the static executor's reduce operator.
func Fold(m Monoid, heads []values.Value) values.Value {
	acc := m.Zero()
	for _, h := range heads {
		acc = m.Merge(acc, m.Unit(h))
	}
	return m.Finalize(acc)
}
