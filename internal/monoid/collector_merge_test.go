package monoid

import (
	"testing"

	"vida/internal/values"
)

// TestMergeFromOrdering: partial collectors merged in input order must
// reproduce the serial fold exactly, including for the non-commutative
// list monoid — the property morsel-parallel reduces rely on.
func TestMergeFromOrdering(t *testing.T) {
	heads := []values.Value{
		values.NewInt(3), values.NewInt(1), values.NewInt(3), values.NewInt(2),
		values.NewInt(9), values.NewInt(0),
	}
	for _, m := range []Monoid{List, Bag, Set, Sum, Count, Max, Min} {
		serial := NewCollector(m)
		for _, h := range heads {
			serial.Add(h)
		}
		want := serial.Result()

		// Split into three partials, merge in order.
		root := NewCollector(m)
		for lo := 0; lo < len(heads); lo += 2 {
			part := NewCollector(m)
			for _, h := range heads[lo : lo+2] {
				part.Add(h)
			}
			root.MergeFrom(part)
		}
		got := root.Result()
		if !values.Equal(got, want) {
			t.Fatalf("%s: merged partials %v != serial %v", m.Name(), got, want)
		}
	}
}

// TestAbsorb feeds accumulation-domain partials directly.
func TestAbsorb(t *testing.T) {
	c := NewCollector(Sum)
	c.Add(values.NewInt(5))
	c.Absorb(values.NewInt(37)) // a partial sum, not a head element
	if got := c.Result(); got.Int() != 42 {
		t.Fatalf("sum absorb = %v", got)
	}

	avg := NewCollector(Avg)
	avg.Absorb(values.NewRecord(
		values.Field{Name: "sum", Val: values.NewFloat(10)},
		values.Field{Name: "count", Val: values.NewInt(4)},
	))
	if got := avg.Result(); got.Float() != 2.5 {
		t.Fatalf("avg absorb = %v", got)
	}

	l := NewCollector(List)
	l.Add(values.NewInt(1))
	l.Absorb(values.NewList(values.NewInt(2), values.NewInt(3)))
	want := values.NewList(values.NewInt(1), values.NewInt(2), values.NewInt(3))
	if got := l.Result(); !values.Equal(got, want) {
		t.Fatalf("list absorb = %v", got)
	}
}
