// Package monoid implements the primitive and collection monoids of the
// Fegaras–Maier monoid comprehension calculus that ViDa adopts as its
// internal query language (paper §3.2). A monoid supplies an associative
// merge ⊕ with identity Z⊕ and, for collections, a unit function U⊕; the
// comprehension for{...} yield ⊕ e folds the evaluated heads with ⊕.
//
// # Monoid laws
//
// Every Monoid implementation must satisfy, over its accumulation
// domain:
//
//	Merge(Zero, x) == x == Merge(x, Zero)        (identity)
//	Merge(Merge(x, y), z) == Merge(x, Merge(y, z)) (associativity)
//
// Commutative() additionally promises Merge(x, y) == Merge(y, x).
// These laws are what the executors lean on: associativity lets
// morsel-parallel scans fold per-worker partial accumulators and merge
// them in morsel order with an exact result — including for the
// non-commutative list monoid — and commutativity is the license for
// the streaming paths to emit chunks in completion order (bag/set).
//
// Some "monoids" the paper exposes to users (avg, median, top-k) are
// not literal monoids over their output type; they follow the standard
// trick of accumulating in an auxiliary monoid (sum/count pair, sorted
// list, bounded list) and applying a Finalize step when the
// comprehension completes.
//
// # Collector
//
// Collector is the streaming accumulator executors fold through. For
// scalar monoids it merges incrementally (constant state); for the
// collection monoids and median it gathers elements and canonicalizes
// once at Result — both compute exactly Finalize(fold of units).
// Absorb/MergeFrom accept pre-folded partials, which is how parallel
// workers hand their unboxed partial aggregates to the root.
//
// Grouped reduces (GROUP BY) fold the same monoids once per group:
// the JIT's hash-aggregation operator keeps typed per-group
// accumulator arrays for the scalar monoids and falls back to one
// Collector per group otherwise. The monoid laws carry over
// unchanged — associativity makes merging per-worker group tables in
// morsel order exactly equal to the serial per-group fold, and the
// avg/median-style Finalize runs once per group at emission.
//
// # TopKAcc merge determinism
//
// TopKAcc generalizes the top-k monoid into the keyed, offset-aware
// bounded heap behind ORDER BY/LIMIT/OFFSET pushdown. Its total order
// is the sort keys in sequence with the element's own value as the
// final tiebreaker, so the ranking is a total order over (keys,
// element) pairs — no two distinct elements are ever "equal". That
// makes MergeFrom deterministic regardless of how rows were partitioned
// into morsels or which worker finished first: the same multiset of
// offered rows always finalizes to the same list, so parallel ordered
// queries are byte-identical across worker counts. Offer bounds each
// accumulator to offset+limit entries, and Competitive lets scan loops
// skip head evaluation for rows that cannot place.
package monoid
