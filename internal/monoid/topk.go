package monoid

import (
	"sort"

	"vida/internal/values"
)

// This file holds the keyed, offset-aware top-k accumulator behind ORDER
// BY / LIMIT / OFFSET pushdown. It generalizes the user-facing top-k
// monoid (yield top5 e, which ranks elements by their own value) to rank
// arbitrary elements by a separate multi-part sort key with per-key
// direction — the fold the JIT executor pushes into its pipelines so a
// ranked query over n rows retains O(offset+limit) state instead of
// materializing all n.
//
// Like avg and median, keyed top-k is a "monoid" in the paper's loose
// sense: it accumulates in an auxiliary domain (a bounded heap of
// key/element pairs) whose merge is associative and commutative, and a
// Finalize step (sort, offset, slice) produces the user-visible result.
// Commutativity is what licenses morsel-parallel execution: workers fold
// disjoint row ranges into partial heaps and merge them in any order.

// KeyedEntry is one element tagged with its evaluated sort key.
type KeyedEntry struct {
	Keys []values.Value
	Elem values.Value
}

// TopKAcc accumulates the best entries under a multi-key ordering. The
// zero bound (Keep < 0) accumulates everything (full sort at Finalize);
// a non-negative Keep retains only the Keep best entries in a bounded
// max-heap whose root is the worst retained entry — inserting row n+1
// costs O(log keep) and evicts the current worst.
type TopKAcc struct {
	desc    []bool // per-key direction, true = descending
	keep    int    // max retained entries; < 0 = unbounded
	entries []KeyedEntry
	heaped  bool
}

// NewTopKAcc returns an accumulator ordering entries by len(desc) keys
// (Compare per key, direction flipped where desc[i]), ties broken by the
// element's own total order so results are deterministic regardless of
// input order or worker count. keep bounds retained entries (< 0:
// unbounded).
func NewTopKAcc(desc []bool, keep int) *TopKAcc {
	return &TopKAcc{desc: desc, keep: keep}
}

// Len returns the number of retained entries.
func (t *TopKAcc) Len() int { return len(t.entries) }

// less reports whether a sorts strictly before b under the key ordering,
// with the element value as the final tiebreaker. A total, deterministic
// order is what makes parallel top-k results independent of morsel
// interleaving: of two entries with equal keys AND equal elements, either
// is interchangeable in the output.
func (t *TopKAcc) less(a, b *KeyedEntry) bool {
	for i := range t.desc {
		c := values.Compare(a.Keys[i], b.Keys[i])
		if t.desc[i] {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return values.Compare(a.Elem, b.Elem) < 0
}

// Add folds one entry. The keys and element are retained; callers must
// not reuse the Keys slice.
func (t *TopKAcc) Add(keys []values.Value, elem values.Value) {
	t.add(KeyedEntry{Keys: keys, Elem: elem})
}

func (t *TopKAcc) add(e KeyedEntry) {
	if t.keep < 0 || len(t.entries) < t.keep {
		t.entries = append(t.entries, e)
		if t.heaped {
			t.siftUp(len(t.entries) - 1)
		} else if t.keep >= 0 && len(t.entries) == t.keep {
			t.heapify()
		}
		return
	}
	if t.keep == 0 {
		return
	}
	// Heap is full: replace the worst retained entry when e beats it.
	if !t.heaped {
		t.heapify()
	}
	if t.less(&e, &t.entries[0]) {
		t.entries[0] = e
		t.siftDown(0)
	}
}

// Offer is Add for reusable key buffers: when the accumulator is full
// and the entry would not displace the current worst, it is rejected
// without retaining keys — the caller may reuse the slice for the next
// row, which makes the steady state of a large scan with a small limit
// allocation-free. Accepted entries retain keys: the caller must pass a
// fresh slice afterwards. Returns whether the entry was retained.
func (t *TopKAcc) Offer(keys []values.Value, elem values.Value) bool {
	if t.keep == 0 {
		return false
	}
	if t.keep > 0 && len(t.entries) == t.keep {
		if !t.heaped {
			t.heapify()
		}
		e := KeyedEntry{Keys: keys, Elem: elem}
		if !t.less(&e, &t.entries[0]) {
			return false
		}
		t.entries[0] = e
		t.siftDown(0)
		return true
	}
	t.add(KeyedEntry{Keys: keys, Elem: elem})
	return true
}

// Competitive reports whether an entry with these keys could still be
// retained: always while the accumulator is unbounded or not yet full,
// otherwise only when the keys sort before (or tie with — the element
// tiebreak then decides) the current worst. Executors use it to skip
// evaluating the head expression of rows that cannot place.
func (t *TopKAcc) Competitive(keys []values.Value) bool {
	if t.keep < 0 || len(t.entries) < t.keep {
		return true
	}
	if t.keep == 0 {
		return false
	}
	if !t.heaped {
		t.heapify()
	}
	worst := &t.entries[0]
	for i := range t.desc {
		c := values.Compare(keys[i], worst.Keys[i])
		if t.desc[i] {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return true
}

// heapify arranges entries as a max-heap under less (root = worst).
func (t *TopKAcc) heapify() {
	for i := len(t.entries)/2 - 1; i >= 0; i-- {
		t.siftDown(i)
	}
	t.heaped = true
}

func (t *TopKAcc) siftDown(i int) {
	n := len(t.entries)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && t.less(&t.entries[worst], &t.entries[l]) {
			worst = l
		}
		if r < n && t.less(&t.entries[worst], &t.entries[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.entries[i], t.entries[worst] = t.entries[worst], t.entries[i]
		i = worst
	}
}

func (t *TopKAcc) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(&t.entries[parent], &t.entries[i]) {
			return
		}
		t.entries[i], t.entries[parent] = t.entries[parent], t.entries[i]
		i = parent
	}
}

// MergeFrom absorbs another accumulator's partial state (the ⊕ of the
// auxiliary monoid). The absorbed accumulator must not be used afterwards.
func (t *TopKAcc) MergeFrom(o *TopKAcc) {
	if t.keep < 0 && !t.heaped && len(o.entries) > 0 {
		// Unbounded fast path: plain concatenation.
		t.entries = append(t.entries, o.entries...)
		return
	}
	for i := range o.entries {
		t.add(o.entries[i])
	}
}

// Finalize sorts the retained entries ascending under the ordering,
// optionally deduplicates equal elements (set semantics: the first entry
// in key order survives), then applies offset and limit (limit < 0 =
// unbounded). It returns the ordered elements; the accumulator must not
// be used afterwards.
func (t *TopKAcc) Finalize(offset, limit int, dedup bool) []values.Value {
	ents := t.entries
	sort.Slice(ents, func(i, j int) bool { return t.less(&ents[i], &ents[j]) })
	var out []values.Value
	if dedup {
		seen := map[uint64][]values.Value{}
		for i := range ents {
			h := ents[i].Elem.Hash()
			dup := false
			for _, o := range seen[h] {
				if values.Equal(ents[i].Elem, o) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[h] = append(seen[h], ents[i].Elem)
			out = append(out, ents[i].Elem)
		}
	} else {
		out = make([]values.Value, len(ents))
		for i := range ents {
			out[i] = ents[i].Elem
		}
	}
	if offset > 0 {
		if offset >= len(out) {
			return nil
		}
		out = out[offset:]
	}
	if limit >= 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}
