package monoid

import (
	"math/rand"
	"testing"

	"vida/internal/values"
)

func ints(xs ...int64) []values.Value {
	out := make([]values.Value, len(xs))
	for i, x := range xs {
		out[i] = values.NewInt(x)
	}
	return out
}

func TestFoldSum(t *testing.T) {
	if got := Fold(Sum, ints(1, 2, 3)); got.Int() != 6 {
		t.Fatalf("sum = %v", got)
	}
	// Mixed int/float promotes to float.
	got := Fold(Sum, []values.Value{values.NewInt(1), values.NewFloat(0.5)})
	if got.Float() != 1.5 {
		t.Fatalf("mixed sum = %v", got)
	}
}

func TestFoldProd(t *testing.T) {
	if got := Fold(Prod, ints(2, 3, 4)); got.Int() != 24 {
		t.Fatalf("prod = %v", got)
	}
	if got := Fold(Prod, nil); got.Int() != 1 {
		t.Fatalf("empty prod = %v", got)
	}
}

func TestFoldCountIgnoresValues(t *testing.T) {
	heads := []values.Value{values.NewString("a"), values.Null, values.NewInt(9)}
	if got := Fold(Count, heads); got.Int() != 3 {
		t.Fatalf("count = %v", got)
	}
}

func TestFoldMaxMin(t *testing.T) {
	if got := Fold(Max, ints(3, 9, 1)); got.Int() != 9 {
		t.Fatalf("max = %v", got)
	}
	if got := Fold(Min, ints(3, 9, 1)); got.Int() != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := Fold(Max, nil); !got.IsNull() {
		t.Fatalf("empty max = %v, want null", got)
	}
}

func TestFoldBoolMonoids(t *testing.T) {
	bs := []values.Value{values.True, values.False, values.True}
	if Fold(And, bs).Bool() {
		t.Fatal("and over {t,f,t} should be false")
	}
	if !Fold(Or, bs).Bool() {
		t.Fatal("or over {t,f,t} should be true")
	}
	if !Fold(And, nil).Bool() {
		t.Fatal("empty and should be true (identity)")
	}
	if Fold(Or, nil).Bool() {
		t.Fatal("empty or should be false (identity)")
	}
}

func TestFoldAvg(t *testing.T) {
	if got := Fold(Avg, ints(1, 2, 3, 4)); got.Float() != 2.5 {
		t.Fatalf("avg = %v", got)
	}
	if got := Fold(Avg, nil); !got.IsNull() {
		t.Fatalf("empty avg = %v, want null", got)
	}
}

func TestFoldMedian(t *testing.T) {
	if got := Fold(Median, ints(5, 1, 3)); got.Int() != 3 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Fold(Median, ints(4, 1, 3, 2)); got.Float() != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	// Median must be insensitive to input order (it sorts internally).
	if got := Fold(Median, ints(3, 1, 5)); got.Int() != 3 {
		t.Fatalf("median order sensitivity: %v", got)
	}
}

func TestFoldTopK(t *testing.T) {
	got := Fold(TopK(2), ints(5, 9, 1, 7))
	es := got.Elems()
	if len(es) != 2 || es[0].Int() != 9 || es[1].Int() != 7 {
		t.Fatalf("top2 = %v", got)
	}
	if TopK(3).Name() != "top3" {
		t.Fatalf("TopK name = %s", TopK(3).Name())
	}
}

func TestFoldCollections(t *testing.T) {
	heads := ints(2, 1, 2)
	if got := Fold(List, heads); got.Len() != 3 || got.Elems()[0].Int() != 2 {
		t.Fatalf("list = %v", got)
	}
	if got := Fold(Bag, heads); got.Len() != 3 || got.Elems()[0].Int() != 1 {
		t.Fatalf("bag = %v", got)
	}
	if got := Fold(Set, heads); got.Len() != 2 {
		t.Fatalf("set = %v", got)
	}
	if got := Fold(Array, heads); got.Kind() != values.KindArray || got.Len() != 3 {
		t.Fatalf("array = %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sum", "prod", "count", "max", "min", "and", "or", "avg", "median", "list", "bag", "set", "array", "top5"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m == nil {
			t.Fatalf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("frobnicate"); err == nil {
		t.Fatal("unknown monoid should error")
	}
	if _, err := ByName("topx"); err == nil {
		t.Fatal("malformed top-k should error")
	}
}

func TestIsCollectionAndKind(t *testing.T) {
	if !IsCollection(Set) || IsCollection(Sum) {
		t.Fatal("IsCollection misclassifies")
	}
	if k, ok := CollectionKind(Bag); !ok || k != values.KindBag {
		t.Fatalf("CollectionKind(bag) = %v, %v", k, ok)
	}
	if _, ok := CollectionKind(Count); ok {
		t.Fatal("count is not a collection")
	}
}

// all monoids under test for the law checks
func lawMonoids() []Monoid {
	return []Monoid{Sum, Prod, Count, Max, Min, And, Or, Avg, Median, List, Bag, Set, Array, TopK(3)}
}

// randomUnit produces a value in the monoid's input domain.
func randomUnit(m Monoid, r *rand.Rand) values.Value {
	switch m.Name() {
	case "and", "or":
		return values.NewBool(r.Intn(2) == 0)
	default:
		return values.NewInt(int64(r.Intn(7)))
	}
}

// TestMonoidLaws property-checks identity and associativity over the
// accumulation domain (values produced by Zero/Unit/Merge).
func TestMonoidLaws(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, m := range lawMonoids() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			for trial := 0; trial < 200; trial++ {
				x := m.Unit(randomUnit(m, r))
				y := m.Unit(randomUnit(m, r))
				z := m.Unit(randomUnit(m, r))
				// Identity laws.
				if !values.Equal(m.Merge(m.Zero(), x), x) {
					t.Fatalf("left identity violated for %v", x)
				}
				if !values.Equal(m.Merge(x, m.Zero()), x) {
					t.Fatalf("right identity violated for %v", x)
				}
				// Associativity.
				l := m.Merge(m.Merge(x, y), z)
				rr := m.Merge(x, m.Merge(y, z))
				if !values.Equal(l, rr) {
					t.Fatalf("associativity violated: (%v+%v)+%v: %v vs %v", x, y, z, l, rr)
				}
				// Commutativity where claimed.
				if m.Commutative() {
					if !values.Equal(m.Merge(x, y), m.Merge(y, x)) {
						t.Fatalf("claimed commutative but %v+%v != %v+%v", x, y, y, x)
					}
				}
				// Idempotence where claimed.
				if m.Idempotent() {
					if !values.Equal(m.Merge(x, x), x) {
						t.Fatalf("claimed idempotent but x+x != x for %v", x)
					}
				}
			}
		})
	}
}

// TestListNotCommutative guards the flag: list must not claim commutativity.
func TestListNotCommutative(t *testing.T) {
	if List.Commutative() {
		t.Fatal("list must not be commutative")
	}
	a, b := List.Unit(values.NewInt(1)), List.Unit(values.NewInt(2))
	if values.Equal(List.Merge(a, b), List.Merge(b, a)) {
		t.Fatal("list merge looks commutative, ordering lost")
	}
}

func TestFoldMatchesPairwiseSplit(t *testing.T) {
	// For commutative monoids, folding any permutation must agree.
	r := rand.New(rand.NewSource(99))
	for _, m := range lawMonoids() {
		if !m.Commutative() {
			continue
		}
		heads := make([]values.Value, 10)
		for i := range heads {
			heads[i] = randomUnit(m, r)
		}
		want := Fold(m, heads)
		perm := r.Perm(len(heads))
		shuffled := make([]values.Value, len(heads))
		for i, p := range perm {
			shuffled[i] = heads[p]
		}
		if got := Fold(m, shuffled); !values.Equal(got, want) {
			t.Fatalf("%s: fold not order-insensitive: %v vs %v", m.Name(), got, want)
		}
	}
}

// TestCollectorMatchesFold property-checks that the streaming Collector
// computes exactly Finalize(fold of units) for every monoid, including
// the collection-building ones it special-cases.
func TestCollectorMatchesFold(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for _, m := range lawMonoids() {
		for trial := 0; trial < 50; trial++ {
			n := r.Intn(12)
			heads := make([]values.Value, n)
			for i := range heads {
				heads[i] = randomUnit(m, r)
			}
			want := Fold(m, heads)
			c := NewCollector(m)
			for _, h := range heads {
				c.Add(h)
			}
			got := c.Result()
			if !values.Equal(got, want) {
				t.Fatalf("%s: collector diverged on %v:\ncollector: %v\nfold:      %v",
					m.Name(), heads, got, want)
			}
		}
	}
}

// TestCollectorEmpty checks zero-input behaviour across monoids.
func TestCollectorEmpty(t *testing.T) {
	for _, m := range lawMonoids() {
		c := NewCollector(m)
		want := Fold(m, nil)
		if got := c.Result(); !values.Equal(got, want) {
			t.Fatalf("%s: empty collector = %v, want %v", m.Name(), got, want)
		}
	}
}
