package monoid

import (
	"math/rand"
	"sort"
	"testing"

	"vida/internal/values"
)

func intv(i int64) values.Value { return values.NewInt(i) }

// referenceTopK computes the expected Finalize output by full sort.
func referenceTopK(entries []KeyedEntry, desc []bool, offset, limit int) []values.Value {
	acc := NewTopKAcc(desc, -1)
	sorted := append([]KeyedEntry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool { return acc.less(&sorted[i], &sorted[j]) })
	out := make([]values.Value, len(sorted))
	for i, e := range sorted {
		out[i] = e.Elem
	}
	if offset > 0 {
		if offset >= len(out) {
			return nil
		}
		out = out[offset:]
	}
	if limit >= 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}

func TestTopKAccBoundedMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		desc := []bool{rng.Intn(2) == 1, rng.Intn(2) == 1}
		entries := make([]KeyedEntry, n)
		for i := range entries {
			k1 := intv(int64(rng.Intn(20)))
			k2 := intv(int64(rng.Intn(5)))
			entries[i] = KeyedEntry{Keys: []values.Value{k1, k2}, Elem: intv(int64(i))}
		}
		offset := rng.Intn(5)
		limit := rng.Intn(10)

		acc := NewTopKAcc(desc, offset+limit)
		for _, e := range entries {
			acc.Add(e.Keys, e.Elem)
		}
		got := acc.Finalize(offset, limit, false)
		want := referenceTopK(entries, desc, offset, limit)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d elems, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if !values.Equal(got[i], want[i]) {
				t.Fatalf("trial %d: elem %d = %s, want %s", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTopKAccMergePartialsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	entries := make([]KeyedEntry, 500)
	for i := range entries {
		entries[i] = KeyedEntry{
			Keys: []values.Value{intv(int64(rng.Intn(40)))},
			Elem: intv(int64(i % 100)), // duplicate elements across partials
		}
	}
	desc := []bool{false}
	want := referenceTopK(entries, desc, 3, 17)

	for _, workers := range []int{1, 2, 7, 16} {
		partials := make([]*TopKAcc, workers)
		for w := range partials {
			partials[w] = NewTopKAcc(desc, 20)
		}
		for i, e := range entries {
			partials[i%workers].Add(e.Keys, e.Elem)
		}
		root := NewTopKAcc(desc, 20)
		for _, p := range partials {
			root.MergeFrom(p)
		}
		got := root.Finalize(3, 17, false)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d elems, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !values.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d: elem %d = %s, want %s", workers, i, got[i], want[i])
			}
		}
	}
}

func TestTopKAccDedup(t *testing.T) {
	acc := NewTopKAcc([]bool{false}, -1)
	acc.Add([]values.Value{intv(2)}, values.NewString("b"))
	acc.Add([]values.Value{intv(1)}, values.NewString("a"))
	acc.Add([]values.Value{intv(3)}, values.NewString("a")) // dup elem, worse key
	acc.Add([]values.Value{intv(4)}, values.NewString("c"))
	got := acc.Finalize(0, -1, true)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %d elems, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Str() != want[i] {
			t.Fatalf("elem %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTopKAccOffsetBeyondEnd(t *testing.T) {
	acc := NewTopKAcc([]bool{false}, 5)
	acc.Add([]values.Value{intv(1)}, intv(1))
	if got := acc.Finalize(10, 3, false); len(got) != 0 {
		t.Fatalf("offset beyond end: got %d elems", len(got))
	}
}

func TestTopKAccZeroKeep(t *testing.T) {
	acc := NewTopKAcc([]bool{false}, 0)
	acc.Add([]values.Value{intv(1)}, intv(1))
	if acc.Len() != 0 {
		t.Fatalf("keep=0 retained %d entries", acc.Len())
	}
}

func TestTopKMonoidStillRanksDescending(t *testing.T) {
	m := TopK(3)
	res := Fold(m, []values.Value{intv(5), intv(9), intv(1), intv(7), intv(3)})
	want := []int64{9, 7, 5}
	if res.Len() != 3 {
		t.Fatalf("top3 kept %d", res.Len())
	}
	for i, e := range res.Elems() {
		if e.Int() != want[i] {
			t.Fatalf("elem %d = %d, want %d", i, e.Int(), want[i])
		}
	}
}
