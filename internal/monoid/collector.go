package monoid

import "vida/internal/values"

// Collector is the streaming accumulator executors use for yield clauses.
// For scalar monoids it folds incrementally (constant state). For
// collection-building monoids (list/bag/set/array) and for median — whose
// accumulation domains are collections — folding via Merge would
// re-canonicalize the whole accumulator on every element (quadratic);
// Collector instead gathers elements and builds the collection once at
// Result. Both strategies compute exactly Finalize(fold of units): for
// these monoids the fold of n units is, by the monoid laws, the
// collection of the n elements.
type Collector struct {
	m       Monoid
	collect bool
	elems   []values.Value
	acc     values.Value
}

// NewCollector returns a fresh accumulator for m.
func NewCollector(m Monoid) *Collector {
	switch m.Name() {
	case "list", "bag", "set", "array", "median":
		return &Collector{m: m, collect: true}
	}
	return &Collector{m: m, acc: m.Zero()}
}

// Add feeds one head value.
func (c *Collector) Add(v values.Value) {
	if c.collect {
		c.elems = append(c.elems, v)
		return
	}
	c.acc = c.m.Merge(c.acc, c.m.Unit(v))
}

// Absorb merges a value already in the accumulation domain of the
// monoid — a partial aggregate, not a head element — into the collector.
// For collection-building monoids the accumulation domain is the
// collection itself, so its elements are appended in order.
func (c *Collector) Absorb(v values.Value) {
	if c.collect {
		c.elems = append(c.elems, v.Elems()...)
		return
	}
	c.acc = c.m.Merge(c.acc, v)
}

// MergeFrom absorbs another collector's partial state. Merging partials
// in input order is what makes morsel-parallel execution exact for
// non-commutative monoids (list): associativity of ⊕ is all it needs.
// The absorbed collector must not be used afterwards.
func (c *Collector) MergeFrom(o *Collector) {
	if c.collect {
		c.elems = append(c.elems, o.elems...)
		return
	}
	c.acc = c.m.Merge(c.acc, o.acc)
}

// AggSkipsNull reports whether m ignores null inputs when used as a
// grouped aggregate. Scalar folds (sum/prod/avg/median/min/max/and/or)
// follow SQL aggregate semantics and skip nulls; count counts every
// binding, and collection monoids keep nulls as elements.
func AggSkipsNull(m Monoid) bool {
	switch m.Name() {
	case "count", "list", "bag", "set", "array":
		return false
	}
	return true
}

// AggAdd feeds one aggregate input to c under grouped-aggregate null
// semantics: null inputs are dropped for null-skipping monoids (so an
// all-null group yields the monoid's finalized zero — 0 for sum, null
// for avg/min/max) and kept for count and collection monoids.
func AggAdd(c *Collector, v values.Value) {
	if v.IsNull() && AggSkipsNull(c.m) {
		return
	}
	c.Add(v)
}

// Result finalizes the accumulation.
func (c *Collector) Result() values.Value {
	if !c.collect {
		return c.m.Finalize(c.acc)
	}
	switch c.m.Name() {
	case "list":
		return values.NewList(c.elems...)
	case "bag":
		return values.NewBag(c.elems...)
	case "set":
		return values.NewSet(c.elems...)
	case "array":
		return values.NewArray([]int{len(c.elems)}, c.elems)
	case "median":
		return c.m.Finalize(values.NewBag(c.elems...))
	}
	panic("monoid: unreachable collector state")
}
