package algebra

import (
	"fmt"

	"vida/internal/mcl"
	"vida/internal/monoid"
)

// TranslateError reports a calculus form the translator cannot lower.
type TranslateError struct{ Msg string }

func (e *TranslateError) Error() string { return "algebra: " + e.Msg }

// Translate lowers a normalized comprehension to an algebra plan. The
// qualifier list maps onto a left-deep chain:
//
//	v <- SourceName      → Scan (first) or Product with a Scan
//	v <- path-or-expr    → Generate (unnesting / computed generator)
//	v := e               → Bind
//	predicate            → Select
//
// and the yield clause becomes the final Reduce. Nested comprehensions
// inside predicates or the head remain expressions: executors evaluate
// them as correlated subplans against the current binding (full
// decorrelation into nest/outer-join operators is future work, as it is in
// the paper's prototype).
//
// The sources set names the catalog datasets; a generator whose source is
// a bare variable in sources becomes a Scan, anything else a Generate.
func Translate(e mcl.Expr, sources map[string]bool) (*Reduce, error) {
	comp, ok := e.(*mcl.Comprehension)
	if !ok {
		// Wrap a bare expression: evaluate it once (a reduce over one
		// empty binding) under the bag monoid would change its type, so
		// instead synthesize for { } yield <m> e only for comprehensions.
		return nil, &TranslateError{Msg: fmt.Sprintf("top level must be a comprehension, got %T", e)}
	}
	var plan Plan
	for _, q := range comp.Qs {
		switch {
		case q.IsGenerator():
			if v, ok := q.Src.(*mcl.VarExpr); ok && sources[v.Name] {
				scan := &Scan{Source: v.Name, Var: q.Var}
				if plan == nil {
					plan = scan
				} else {
					plan = &Product{L: plan, R: scan}
				}
				continue
			}
			plan = &Generate{Input: plan, Var: q.Var, E: q.Src}
		case q.IsBind():
			if plan == nil {
				// A leading bind becomes a one-element generator so the
				// plan has a driving row.
				plan = &Generate{Var: q.Var, E: &mcl.SingletonExpr{M: monoid.List, E: q.Src}}
				continue
			}
			plan = &Bind{Input: plan, Var: q.Var, E: q.Src}
		default:
			if plan == nil {
				return nil, &TranslateError{Msg: "filter before any generator"}
			}
			plan = &Select{Input: plan, Pred: q.Src}
		}
	}
	out := &Reduce{Input: plan, M: comp.M, Head: comp.Head}
	if comp.Grouped() {
		// The grouping clause transfers verbatim; HAVING becomes the
		// reduce's predicate, evaluated per group in the group scope.
		out.GroupBy = append([]mcl.GroupKey{}, comp.GroupBy...)
		out.Aggs = append([]mcl.AggSpec{}, comp.Aggs...)
		out.Pred = comp.Having
	}
	if comp.HasBound() {
		spec := &OrderSpec{Limit: comp.Limit, Offset: comp.Offset}
		for _, k := range comp.Order {
			spec.Keys = append(spec.Keys, SortKey{E: k.E, Desc: k.Desc})
		}
		out.Order = spec
	}
	return out, nil
}

// ResolveExtents evaluates an OrderSpec's limit/offset to concrete ints:
// (limit, offset) with limit = -1 for unbounded. Parameters must have
// been substituted (BindParams) first; a surviving placeholder errors.
func ResolveExtents(o *OrderSpec) (limit, offset int, err error) {
	if o == nil {
		return -1, 0, nil
	}
	limit, err = mcl.EvalExtent(o.Limit, nil, "limit", -1)
	if err != nil {
		return 0, 0, err
	}
	offset, err = mcl.EvalExtent(o.Offset, nil, "offset", 0)
	if err != nil {
		return 0, 0, err
	}
	return limit, offset, nil
}
