package algebra

import (
	"vida/internal/mcl"
	"vida/internal/values"
)

// exprFields enumerates the expression slots of one plan node, so the
// parameter helpers stay in sync with the node set.
func exprFields(p Plan) []mcl.Expr {
	switch n := p.(type) {
	case *Scan:
		return []mcl.Expr{n.Filter}
	case *Generate:
		return []mcl.Expr{n.E}
	case *Select:
		return []mcl.Expr{n.Pred}
	case *Join:
		out := make([]mcl.Expr, 0, 2*len(n.On)+1)
		for _, on := range n.On {
			out = append(out, on.LExpr, on.RExpr)
		}
		return append(out, n.Residual)
	case *Bind:
		return []mcl.Expr{n.E}
	case *Reduce:
		out := []mcl.Expr{n.Head, n.Pred}
		for _, k := range n.GroupBy {
			out = append(out, k.E)
		}
		for _, a := range n.Aggs {
			out = append(out, a.E)
		}
		if n.Order != nil {
			for _, k := range n.Order.Keys {
				out = append(out, k.E)
			}
			out = append(out, n.Order.Limit, n.Order.Offset)
		}
		return out
	}
	return nil
}

// PlanParams returns the bind-parameter names referenced anywhere in the
// plan, in first-occurrence order (walking inputs before each node's own
// expressions, matching qualifier order).
func PlanParams(p Plan) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Plan)
	walk = func(p Plan) {
		if p == nil {
			return
		}
		for _, in := range p.Inputs() {
			walk(in)
		}
		for _, e := range exprFields(p) {
			for _, name := range mcl.Params(e) {
				if !seen[name] {
					seen[name] = true
					out = append(out, name)
				}
			}
		}
	}
	walk(p)
	return out
}

// BindParams returns a copy of the plan with every parameter placeholder
// substituted by its bound constant. The original plan (typically a
// cached prepared statement shared by concurrent executions) is not
// mutated; expressions without parameters are shared, not copied.
func BindParams(p *Reduce, params map[string]values.Value) *Reduce {
	if len(params) == 0 {
		return p
	}
	return bindPlan(p, params).(*Reduce)
}

func bindPlan(p Plan, params map[string]values.Value) Plan {
	if p == nil {
		return nil
	}
	switch n := p.(type) {
	case *Scan:
		cp := *n
		cp.Filter = mcl.BindParams(n.Filter, params)
		return &cp
	case *Generate:
		cp := *n
		if n.Input != nil {
			cp.Input = bindPlan(n.Input, params)
		}
		cp.E = mcl.BindParams(n.E, params)
		return &cp
	case *Select:
		return &Select{Input: bindPlan(n.Input, params), Pred: mcl.BindParams(n.Pred, params)}
	case *Product:
		return &Product{L: bindPlan(n.L, params), R: bindPlan(n.R, params)}
	case *Join:
		on := make([]EquiPair, len(n.On))
		for i, pair := range n.On {
			on[i] = EquiPair{
				LExpr: mcl.BindParams(pair.LExpr, params),
				RExpr: mcl.BindParams(pair.RExpr, params),
			}
		}
		return &Join{
			L: bindPlan(n.L, params), R: bindPlan(n.R, params),
			On: on, Residual: mcl.BindParams(n.Residual, params),
		}
	case *Bind:
		return &Bind{Input: bindPlan(n.Input, params), Var: n.Var, E: mcl.BindParams(n.E, params)}
	case *Reduce:
		out := &Reduce{
			Input: bindPlan(n.Input, params),
			M:     n.M,
			Head:  mcl.BindParams(n.Head, params),
			Pred:  mcl.BindParams(n.Pred, params),
		}
		for _, k := range n.GroupBy {
			out.GroupBy = append(out.GroupBy, mcl.GroupKey{Name: k.Name, E: mcl.BindParams(k.E, params)})
		}
		for _, a := range n.Aggs {
			out.Aggs = append(out.Aggs, mcl.AggSpec{Name: a.Name, M: a.M, E: mcl.BindParams(a.E, params)})
		}
		if n.Order != nil {
			spec := &OrderSpec{
				Limit:  mcl.BindParams(n.Order.Limit, params),
				Offset: mcl.BindParams(n.Order.Offset, params),
			}
			for _, k := range n.Order.Keys {
				spec.Keys = append(spec.Keys, SortKey{E: mcl.BindParams(k.E, params), Desc: k.Desc})
			}
			out.Order = spec
		}
		return out
	}
	return p
}
