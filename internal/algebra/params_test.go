package algebra

import (
	"testing"

	"vida/internal/mcl"
	"vida/internal/values"
)

func TestPlanParamsAndBind(t *testing.T) {
	expr := mcl.MustParse(`for { p <- People, p.age > $min, p.id < $max } yield bag p.id`)
	plan, err := Translate(mcl.Normalize(expr).(*mcl.Comprehension), map[string]bool{"People": true})
	if err != nil {
		t.Fatal(err)
	}
	got := PlanParams(plan)
	if len(got) != 2 {
		t.Fatalf("PlanParams = %v, want both parameters", got)
	}
	bound := BindParams(plan, map[string]values.Value{
		"min": values.NewInt(1),
		"max": values.NewInt(10),
	})
	if rest := PlanParams(bound); len(rest) != 0 {
		t.Fatalf("parameters survive BindParams: %v", rest)
	}
	// The shared original is untouched: cached plans serve concurrent
	// executions with different bindings.
	if rest := PlanParams(plan); len(rest) != 2 {
		t.Fatalf("BindParams mutated the cached plan: %v", rest)
	}
}
