// Package algebra implements ViDa's nested relational algebra: the
// intermediate form between the monoid comprehension calculus and the
// executors (paper §3.2: "ViDa translates the monoid calculus to an
// intermediate algebraic representation, which is more amenable to
// traditional optimization techniques"). The operator set follows
// Fegaras–Maier: scans, selections, products/joins, unnesting of inner
// collections, let bindings, and the generalized reduce operator the paper
// singles out in §4 ("our algebra includes the reduce operator, which is a
// generalization of the straightforward relational projection operator").
//
// Plans operate over streams of variable bindings rather than fixed-width
// tuples: each row is an environment extension, which is what lets one
// algebra span tabular, hierarchical and array data.
package algebra

import (
	"fmt"
	"strings"

	"vida/internal/mcl"
	"vida/internal/monoid"
	"vida/internal/values"
)

// Plan is a node of the algebra tree.
type Plan interface {
	// Inputs returns the child plans.
	Inputs() []Plan
	// Vars returns the binding variables this node introduces (not
	// including those of its inputs).
	Vars() []string
	// String renders the single node (not the subtree).
	String() string
	planNode()
}

// Scan binds Var to each element of the named catalog source. Fields, when
// non-empty, is the set of attributes the rest of the plan actually uses —
// the projection hint that lets raw-file access paths tokenize only the
// bytes they need (paper §5). Filter, when non-nil, is a predicate over
// Var alone that access paths may evaluate during the scan.
type Scan struct {
	Source string
	Var    string
	Fields []string
	Filter mcl.Expr
}

// Generate evaluates expression E once per input binding and binds Var to
// each element of the resulting collection. With a nil Input it runs once
// against the empty binding. It subsumes the classic Unnest operator
// (E = path expression over a bound variable) and generators over computed
// collections (including correlated subqueries).
type Generate struct {
	Input Plan // may be nil
	Var   string
	E     mcl.Expr
}

// Select filters bindings by a predicate.
type Select struct {
	Input Plan
	Pred  mcl.Expr
}

// Product is the cross product of two independent binding streams.
type Product struct {
	L, R Plan
}

// EquiPair is one equality condition of a Join: LExpr over the left
// bindings equals RExpr over the right bindings.
type EquiPair struct {
	LExpr, RExpr mcl.Expr
}

// Join is an equi-join with optional residual predicate, produced by the
// optimizer from Product+Select patterns. Physical executors implement it
// with a hash table on the key expressions.
type Join struct {
	L, R     Plan
	On       []EquiPair
	Residual mcl.Expr // may be nil
}

// Bind extends each binding with Var := E (the calculus let qualifier).
type Bind struct {
	Input Plan
	Var   string
	E     mcl.Expr
}

// SortKey is one ORDER BY component of an OrderSpec: a key expression
// over the input bindings (same scope as the Reduce head), with
// direction.
type SortKey struct {
	E    mcl.Expr
	Desc bool
}

// OrderSpec orders and bounds a Reduce's collection result. Keys may be
// empty (bare LIMIT/OFFSET — executors stop producers after
// offset+limit rows for commutative monoids, take the in-order prefix
// for lists). Limit and Offset are integer-valued expressions evaluated
// against the empty environment at execution time: constants after
// BindParams, so `LIMIT $1` keys the plan cache on the parameterized
// text while each run bounds the fold differently. nil Limit means
// unbounded, nil Offset means 0.
type OrderSpec struct {
	Keys   []SortKey
	Limit  mcl.Expr // nil = unbounded
	Offset mcl.Expr // nil = 0
}

// Ordered reports whether the spec carries sort keys (vs a bare bound).
func (o *OrderSpec) Ordered() bool { return o != nil && len(o.Keys) > 0 }

// Reduce folds the head expression over all input bindings under monoid M
// — the paper's generalized projection. Optional inline predicate Pred
// mirrors the paper's description ("besides projecting a candidate result,
// it optionally evaluates a binary predicate over it"). Order, when
// non-nil, turns the fold into a keyed top-k (or a bounded prefix): the
// executor retains O(offset+limit) state and yields an ordered list.
type Reduce struct {
	Input Plan
	M     monoid.Monoid
	Head  mcl.Expr
	Pred  mcl.Expr   // may be nil
	Order *OrderSpec // may be nil

	// GroupBy, when non-empty, makes this a grouped reduce: input bindings
	// are partitioned by the key tuple (nulls group together, groups appear
	// in first-occurrence order), and each Aggs entry folds its expression
	// per group under its own monoid — one pass over the input. Head, Pred
	// (the HAVING predicate) and Order.Keys are then evaluated once per
	// group in the group scope, where the key and aggregate names are bound
	// and the input binding variables are hidden.
	GroupBy []mcl.GroupKey
	Aggs    []mcl.AggSpec
}

// Grouped reports whether this reduce partitions its input by key.
func (p *Reduce) Grouped() bool { return len(p.GroupBy) > 0 }

func (*Scan) planNode()     {}
func (*Generate) planNode() {}
func (*Select) planNode()   {}
func (*Product) planNode()  {}
func (*Join) planNode()     {}
func (*Bind) planNode()     {}
func (*Reduce) planNode()   {}

// Inputs implementations.
func (p *Scan) Inputs() []Plan { return nil }
func (p *Generate) Inputs() []Plan {
	if p.Input == nil {
		return nil
	}
	return []Plan{p.Input}
}
func (p *Select) Inputs() []Plan  { return []Plan{p.Input} }
func (p *Product) Inputs() []Plan { return []Plan{p.L, p.R} }
func (p *Join) Inputs() []Plan    { return []Plan{p.L, p.R} }
func (p *Bind) Inputs() []Plan    { return []Plan{p.Input} }
func (p *Reduce) Inputs() []Plan  { return []Plan{p.Input} }

// Vars implementations.
func (p *Scan) Vars() []string     { return []string{p.Var} }
func (p *Generate) Vars() []string { return []string{p.Var} }
func (p *Select) Vars() []string   { return nil }
func (p *Product) Vars() []string  { return nil }
func (p *Join) Vars() []string     { return nil }
func (p *Bind) Vars() []string     { return []string{p.Var} }
func (p *Reduce) Vars() []string   { return nil }

func (p *Scan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scan(%s as %s", p.Source, p.Var)
	if len(p.Fields) > 0 {
		fmt.Fprintf(&sb, " fields=%v", p.Fields)
	}
	if p.Filter != nil {
		fmt.Fprintf(&sb, " filter=%s", p.Filter)
	}
	sb.WriteByte(')')
	return sb.String()
}

func (p *Generate) String() string {
	return fmt.Sprintf("Generate(%s <- %s)", p.Var, p.E)
}

func (p *Select) String() string  { return fmt.Sprintf("Select(%s)", p.Pred) }
func (p *Product) String() string { return "Product" }

func (p *Join) String() string {
	var sb strings.Builder
	sb.WriteString("Join(")
	for i, on := range p.On {
		if i > 0 {
			sb.WriteString(" and ")
		}
		fmt.Fprintf(&sb, "%s = %s", on.LExpr, on.RExpr)
	}
	if p.Residual != nil {
		fmt.Fprintf(&sb, " residual=%s", p.Residual)
	}
	sb.WriteByte(')')
	return sb.String()
}

func (p *Bind) String() string { return fmt.Sprintf("Bind(%s := %s)", p.Var, p.E) }

func (p *Reduce) String() string {
	var sb strings.Builder
	if p.Pred != nil {
		fmt.Fprintf(&sb, "Reduce[%s](%s if %s)", p.M.Name(), p.Head, p.Pred)
	} else {
		fmt.Fprintf(&sb, "Reduce[%s](%s)", p.M.Name(), p.Head)
	}
	if p.Grouped() {
		sb.WriteString(" group=[")
		for i, k := range p.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s := %s", k.Name, k.E)
		}
		sb.WriteByte(']')
		if len(p.Aggs) > 0 {
			sb.WriteString(" aggs=[")
			for i, a := range p.Aggs {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%s := %s %s", a.Name, a.M.Name(), a.E)
			}
			sb.WriteByte(']')
		}
	}
	if o := p.Order; o != nil {
		for i, k := range o.Keys {
			if i == 0 {
				sb.WriteString(" order=[")
			} else {
				sb.WriteString(", ")
			}
			sb.WriteString(k.E.String())
			if k.Desc {
				sb.WriteString(" desc")
			}
		}
		if len(o.Keys) > 0 {
			sb.WriteByte(']')
		}
		if o.Limit != nil {
			fmt.Fprintf(&sb, " limit=%s", o.Limit)
		}
		if o.Offset != nil {
			fmt.Fprintf(&sb, " offset=%s", o.Offset)
		}
	}
	return sb.String()
}

// Format renders the whole plan tree indented, for EXPLAIN output and
// golden tests.
func Format(p Plan) string {
	var sb strings.Builder
	var walk func(p Plan, depth int)
	walk = func(p Plan, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(p.String())
		sb.WriteByte('\n')
		for _, in := range p.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(p, 0)
	return sb.String()
}

// BoundVars returns every variable bound anywhere in the subtree.
func BoundVars(p Plan) []string {
	var out []string
	var walk func(Plan)
	walk = func(p Plan) {
		for _, in := range p.Inputs() {
			walk(in)
		}
		out = append(out, p.Vars()...)
	}
	walk(p)
	return out
}

// UsedSourceFields computes, per scan variable, the set of attributes the
// plan references via projections var.attr. It powers projection pruning:
// scan operators receive exactly the fields later operators touch. The
// bool result reports whether the variable is also used whole (passed
// around without projection), in which case pruning is unsafe.
func UsedSourceFields(p Plan, scanVar string) (fields []string, usedWhole bool) {
	seen := map[string]bool{}
	add := func(f string) {
		if !seen[f] {
			seen[f] = true
			fields = append(fields, f)
		}
	}
	var visitExpr func(e mcl.Expr)
	visitExpr = func(e mcl.Expr) {
		mcl.Walk(e, func(n mcl.Expr) bool {
			if proj, ok := n.(*mcl.ProjExpr); ok {
				if v, ok := proj.Rec.(*mcl.VarExpr); ok && v.Name == scanVar {
					add(proj.Attr)
					return false
				}
				return true
			}
			if v, ok := n.(*mcl.VarExpr); ok && v.Name == scanVar {
				usedWhole = true
			}
			return true
		})
	}
	var walk func(Plan)
	walk = func(p Plan) {
		switch n := p.(type) {
		case *Scan:
			if n.Filter != nil {
				visitExpr(n.Filter)
			}
		case *Generate:
			visitExpr(n.E)
		case *Select:
			visitExpr(n.Pred)
		case *Join:
			for _, on := range n.On {
				visitExpr(on.LExpr)
				visitExpr(on.RExpr)
			}
			if n.Residual != nil {
				visitExpr(n.Residual)
			}
		case *Bind:
			visitExpr(n.E)
		case *Reduce:
			if n.Grouped() {
				// Group keys and aggregate inputs read the source bindings;
				// Head/Pred/Order run in the group scope where the binding
				// variables are hidden, so they cannot touch source fields.
				for _, k := range n.GroupBy {
					visitExpr(k.E)
				}
				for _, a := range n.Aggs {
					visitExpr(a.E)
				}
				break
			}
			visitExpr(n.Head)
			if n.Pred != nil {
				visitExpr(n.Pred)
			}
			if n.Order != nil {
				// Sort keys read source fields too: projection pruning must
				// keep the ORDER BY column tokenized.
				for _, k := range n.Order.Keys {
					visitExpr(k.E)
				}
			}
		}
		for _, in := range p.Inputs() {
			walk(in)
		}
	}
	walk(p)
	return fields, usedWhole
}

// Clone deep-copies the plan structure (expressions are shared: they are
// treated as immutable once built).
func Clone(p Plan) Plan {
	switch n := p.(type) {
	case *Scan:
		cp := *n
		cp.Fields = append([]string{}, n.Fields...)
		return &cp
	case *Generate:
		cp := *n
		if n.Input != nil {
			cp.Input = Clone(n.Input)
		}
		return &cp
	case *Select:
		return &Select{Input: Clone(n.Input), Pred: n.Pred}
	case *Product:
		return &Product{L: Clone(n.L), R: Clone(n.R)}
	case *Join:
		return &Join{L: Clone(n.L), R: Clone(n.R), On: append([]EquiPair{}, n.On...), Residual: n.Residual}
	case *Bind:
		return &Bind{Input: Clone(n.Input), Var: n.Var, E: n.E}
	case *Reduce:
		cp := &Reduce{
			Input: Clone(n.Input), M: n.M, Head: n.Head, Pred: n.Pred,
			GroupBy: append([]mcl.GroupKey{}, n.GroupBy...),
			Aggs:    append([]mcl.AggSpec{}, n.Aggs...),
		}
		if n.Order != nil {
			o := *n.Order
			o.Keys = append([]SortKey{}, n.Order.Keys...)
			cp.Order = &o
		}
		return cp
	}
	panic(fmt.Sprintf("algebra: Clone on %T", p))
}

// Source is the executor-facing view of one registered dataset: a named
// stream of record values. Implementations live in the raw-format readers,
// the caches and the baseline stores.
type Source interface {
	// Name returns the catalog name.
	Name() string
	// Iterate streams every datum, passing each to yield; fields is the
	// projection hint (empty = all fields needed). Implementations stop
	// early when yield returns an error and propagate it.
	Iterate(fields []string, yield func(values.Value) error) error
}

// Catalog resolves source names for executors.
type Catalog interface {
	Source(name string) (Source, bool)
}

// MapCatalog is an in-memory Catalog for tests and examples.
type MapCatalog map[string]Source

// Source implements Catalog.
func (c MapCatalog) Source(name string) (Source, bool) {
	s, ok := c[name]
	return s, ok
}

// SliceSource adapts an in-memory slice of values to a Source.
type SliceSource struct {
	SrcName string
	Rows    []values.Value
}

// Name implements Source.
func (s *SliceSource) Name() string { return s.SrcName }

// Iterate implements Source.
func (s *SliceSource) Iterate(fields []string, yield func(values.Value) error) error {
	for _, r := range s.Rows {
		if err := yield(r); err != nil {
			return err
		}
	}
	return nil
}
