package algebra

import (
	"fmt"

	"vida/internal/mcl"
	"vida/internal/monoid"
	"vida/internal/values"
)

// Executor is implemented by every ViDa execution engine (the reference
// executor here, the static channel executor and the JIT executor in
// internal/jit). Run evaluates the plan against the catalog and returns
// the reduced result.
type Executor interface {
	Run(p *Reduce, cat Catalog) (values.Value, error)
}

// Reference is the materializing reference executor: simple, obviously
// correct, used to validate the optimized engines. It evaluates each node
// to a slice of binding environments.
type Reference struct{}

// Run implements Executor.
func (Reference) Run(p *Reduce, cat Catalog) (values.Value, error) {
	base, err := baseEnv(p, cat)
	if err != nil {
		return values.Null, err
	}
	rows, err := refRows(p.Input, cat, base)
	if err != nil {
		return values.Null, err
	}
	if p.Grouped() {
		// One pass over the input partitions rows into groups; downstream
		// (Pred = HAVING, Head, Order) then runs once per group env.
		rows, err = groupEnvs(p, rows, base)
		if err != nil {
			return values.Null, err
		}
	}
	if p.Order.Ordered() {
		return orderedReduce(p, rows)
	}
	acc := monoid.NewCollector(p.M)
	for _, env := range rows {
		if p.Pred != nil {
			ok, err := evalPred(p.Pred, env)
			if err != nil {
				return values.Null, err
			}
			if !ok {
				continue
			}
		}
		h, err := mcl.Eval(p.Head, env)
		if err != nil {
			return values.Null, err
		}
		acc.Add(h)
	}
	res := acc.Result()
	if p.Order != nil {
		return SliceCollection(res, p.Order)
	}
	return res, nil
}

// groupEnvs folds the input rows into per-group environments: rows are
// partitioned by the key tuple (nulls equal, first-occurrence order),
// each aggregate folds its input per group under grouped null semantics
// (monoid.AggAdd), and every group becomes one environment over the base
// env with the key and aggregate names bound — the reference semantics
// of the grouped reduce every optimized engine must reproduce.
func groupEnvs(p *Reduce, rows []*mcl.Env, base *mcl.Env) ([]*mcl.Env, error) {
	type group struct {
		keys []values.Value
		accs []*monoid.Collector
	}
	var groups []*group
	index := map[uint64][]int{}
	for _, env := range rows {
		keys := make([]values.Value, len(p.GroupBy))
		for i, k := range p.GroupBy {
			kv, err := mcl.Eval(k.E, env)
			if err != nil {
				return nil, err
			}
			keys[i] = kv
		}
		h := mcl.GroupHash(keys)
		var g *group
		for _, gi := range index[h] {
			if mcl.GroupKeysEqual(groups[gi].keys, keys) {
				g = groups[gi]
				break
			}
		}
		if g == nil {
			g = &group{keys: keys, accs: make([]*monoid.Collector, len(p.Aggs))}
			for i, a := range p.Aggs {
				g.accs[i] = monoid.NewCollector(a.M)
			}
			index[h] = append(index[h], len(groups))
			groups = append(groups, g)
		}
		for i, a := range p.Aggs {
			av, err := mcl.Eval(a.E, env)
			if err != nil {
				return nil, err
			}
			monoid.AggAdd(g.accs[i], av)
		}
	}
	out := make([]*mcl.Env, 0, len(groups))
	for _, g := range groups {
		genv := base
		for i, k := range p.GroupBy {
			genv = genv.Bind(k.Name, g.keys[i])
		}
		for i := range p.Aggs {
			genv = genv.Bind(p.Aggs[i].Name, g.accs[i].Result())
		}
		out = append(out, genv)
	}
	return out, nil
}

// orderedReduce folds the rows through the keyed top-k accumulator —
// the reference semantics of ORDER BY/LIMIT/OFFSET every optimized
// engine must reproduce.
func orderedReduce(p *Reduce, rows []*mcl.Env) (values.Value, error) {
	limit, offset, err := ResolveExtents(p.Order)
	if err != nil {
		return values.Null, err
	}
	dedup := p.M.Name() == "set"
	desc := make([]bool, len(p.Order.Keys))
	for i, k := range p.Order.Keys {
		desc[i] = k.Desc
	}
	keep := -1
	if limit >= 0 && !dedup {
		keep = offset + limit
	}
	acc := monoid.NewTopKAcc(desc, keep)
	for _, env := range rows {
		if p.Pred != nil {
			ok, err := evalPred(p.Pred, env)
			if err != nil {
				return values.Null, err
			}
			if !ok {
				continue
			}
		}
		keys := make([]values.Value, len(p.Order.Keys))
		for i, k := range p.Order.Keys {
			kv, err := mcl.Eval(k.E, env)
			if err != nil {
				return values.Null, err
			}
			keys[i] = kv
		}
		h, err := mcl.Eval(p.Head, env)
		if err != nil {
			return values.Null, err
		}
		acc.Add(keys, h)
	}
	return values.NewList(acc.Finalize(offset, limit, dedup)...), nil
}

// SliceCollection applies a keyless OrderSpec (bare limit/offset) to a
// materialized collection result, preserving its kind. Materializing
// executors share it; the JIT engine instead stops producers early.
func SliceCollection(v values.Value, o *OrderSpec) (values.Value, error) {
	limit, offset, err := ResolveExtents(o)
	if err != nil {
		return values.Null, err
	}
	elems := v.Elems()
	if offset > 0 {
		if offset >= len(elems) {
			elems = nil
		} else {
			elems = elems[offset:]
		}
	}
	if limit >= 0 && limit < len(elems) {
		elems = elems[:limit]
	}
	switch v.Kind() {
	case values.KindList:
		return values.NewList(elems...), nil
	case values.KindSet:
		return values.NewSet(elems...), nil
	default:
		return values.NewBag(elems...), nil
	}
}

// baseEnv materializes every catalog source referenced by the plan's
// expressions (correlated subqueries name sources directly) into the root
// environment.
func baseEnv(p Plan, cat Catalog) (*mcl.Env, error) {
	needed := map[string]bool{}
	bound := map[string]bool{}
	for _, v := range BoundVars(p) {
		bound[v] = true
	}
	collect := func(e mcl.Expr) {
		if e == nil {
			return
		}
		for _, v := range mcl.FreeVars(e) {
			if !bound[v] {
				if _, ok := cat.Source(v); ok {
					needed[v] = true
				}
			}
		}
	}
	var walk func(Plan)
	walk = func(p Plan) {
		switch n := p.(type) {
		case *Scan:
			collect(n.Filter)
		case *Generate:
			collect(n.E)
		case *Select:
			collect(n.Pred)
		case *Join:
			for _, on := range n.On {
				collect(on.LExpr)
				collect(on.RExpr)
			}
			collect(n.Residual)
		case *Bind:
			collect(n.E)
		case *Reduce:
			collect(n.Head)
			collect(n.Pred)
			if n.Order != nil {
				for _, k := range n.Order.Keys {
					collect(k.E)
				}
			}
		}
		for _, in := range p.Inputs() {
			walk(in)
		}
	}
	walk(p)
	bindings := map[string]values.Value{}
	for name := range needed {
		v, err := Materialize(cat, name)
		if err != nil {
			return nil, err
		}
		bindings[name] = v
	}
	return mcl.NewEnv(bindings), nil
}

// Materialize reads a whole source into a list value.
func Materialize(cat Catalog, name string) (values.Value, error) {
	src, ok := cat.Source(name)
	if !ok {
		return values.Null, fmt.Errorf("algebra: unknown source %q", name)
	}
	var rows []values.Value
	err := src.Iterate(nil, func(v values.Value) error {
		rows = append(rows, v)
		return nil
	})
	if err != nil {
		return values.Null, err
	}
	return values.NewList(rows...), nil
}

func evalPred(pred mcl.Expr, env *mcl.Env) (bool, error) {
	v, err := mcl.Eval(pred, env)
	if err != nil {
		return false, err
	}
	return v.Kind() == values.KindBool && v.Bool(), nil
}

// refRows evaluates a plan node to its binding environments. A nil plan
// yields the single base binding (the unit row driving qualifier-free
// comprehensions).
func refRows(p Plan, cat Catalog, base *mcl.Env) ([]*mcl.Env, error) {
	if p == nil {
		return []*mcl.Env{base}, nil
	}
	switch n := p.(type) {
	case *Scan:
		src, ok := cat.Source(n.Source)
		if !ok {
			return nil, fmt.Errorf("algebra: unknown source %q", n.Source)
		}
		var out []*mcl.Env
		err := src.Iterate(n.Fields, func(v values.Value) error {
			env := base.Bind(n.Var, v)
			if n.Filter != nil {
				ok, err := evalPred(n.Filter, env)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			out = append(out, env)
			return nil
		})
		return out, err
	case *Generate:
		in, err := refRows(n.Input, cat, base)
		if err != nil {
			return nil, err
		}
		var out []*mcl.Env
		for _, env := range in {
			coll, err := mcl.Eval(n.E, env)
			if err != nil {
				return nil, err
			}
			if coll.IsNull() {
				continue
			}
			if !coll.IsCollection() && coll.Kind() != values.KindArray {
				return nil, fmt.Errorf("algebra: generate over %s", coll.Kind())
			}
			for _, e := range coll.Elems() {
				out = append(out, env.Bind(n.Var, e))
			}
		}
		return out, nil
	case *Select:
		in, err := refRows(n.Input, cat, base)
		if err != nil {
			return nil, err
		}
		var out []*mcl.Env
		for _, env := range in {
			ok, err := evalPred(n.Pred, env)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, env)
			}
		}
		return out, nil
	case *Product:
		// The right side restarts per left row; evaluate the right stream
		// against the base env and splice its bindings onto each left env.
		l, err := refRows(n.L, cat, base)
		if err != nil {
			return nil, err
		}
		r, err := refRows(n.R, cat, base)
		if err != nil {
			return nil, err
		}
		rVars := BoundVars(n.R)
		var out []*mcl.Env
		for _, le := range l {
			for _, re := range r {
				env := le
				for _, v := range rVars {
					if val, ok := re.Lookup(v); ok {
						env = env.Bind(v, val)
					}
				}
				out = append(out, env)
			}
		}
		return out, nil
	case *Join:
		return refJoin(n, cat, base)
	case *Bind:
		in, err := refRows(n.Input, cat, base)
		if err != nil {
			return nil, err
		}
		out := make([]*mcl.Env, len(in))
		for i, env := range in {
			v, err := mcl.Eval(n.E, env)
			if err != nil {
				return nil, err
			}
			out[i] = env.Bind(n.Var, v)
		}
		return out, nil
	case *Reduce:
		return nil, fmt.Errorf("algebra: nested Reduce plans are not supported")
	}
	return nil, fmt.Errorf("algebra: unknown plan node %T", p)
}

// refJoin is a straightforward hash join over the equi-key expressions.
func refJoin(n *Join, cat Catalog, base *mcl.Env) ([]*mcl.Env, error) {
	l, err := refRows(n.L, cat, base)
	if err != nil {
		return nil, err
	}
	r, err := refRows(n.R, cat, base)
	if err != nil {
		return nil, err
	}
	rVars := BoundVars(n.R)
	// Build side: hash the right stream on its key expressions.
	type bucket struct {
		keys []values.Value
		envs []*mcl.Env
	}
	table := map[uint64]*bucket{}
	keyOf := func(env *mcl.Env, exprs []mcl.Expr) (values.Value, error) {
		parts := make([]values.Value, len(exprs))
		for i, e := range exprs {
			v, err := mcl.Eval(e, env)
			if err != nil {
				return values.Null, err
			}
			parts[i] = v
		}
		return values.NewList(parts...), nil
	}
	rExprs := make([]mcl.Expr, len(n.On))
	lExprs := make([]mcl.Expr, len(n.On))
	for i, on := range n.On {
		lExprs[i] = on.LExpr
		rExprs[i] = on.RExpr
	}
	// Null keys never join: `a = b` is false when either side is null, so
	// rows with null key parts are dropped on both sides, matching the
	// Select-based semantics this operator replaces.
	hasNull := func(k values.Value) bool {
		for _, e := range k.Elems() {
			if e.IsNull() {
				return true
			}
		}
		return false
	}
	for _, re := range r {
		k, err := keyOf(re, rExprs)
		if err != nil {
			return nil, err
		}
		if hasNull(k) {
			continue
		}
		h := k.Hash()
		b := table[h]
		if b == nil {
			b = &bucket{}
			table[h] = b
		}
		b.keys = append(b.keys, k)
		b.envs = append(b.envs, re)
	}
	var out []*mcl.Env
	for _, le := range l {
		k, err := keyOf(le, lExprs)
		if err != nil {
			return nil, err
		}
		if hasNull(k) {
			continue
		}
		b := table[k.Hash()]
		if b == nil {
			continue
		}
		for i, rk := range b.keys {
			if !values.Equal(k, rk) {
				continue
			}
			env := le
			for _, v := range rVars {
				if val, ok := b.envs[i].Lookup(v); ok {
					env = env.Bind(v, val)
				}
			}
			if n.Residual != nil {
				ok, err := evalPred(n.Residual, env)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out = append(out, env)
		}
	}
	return out, nil
}
