package algebra

import (
	"math/rand"
	"strings"
	"testing"

	"vida/internal/mcl"
	"vida/internal/monoid"
	"vida/internal/values"
)

func mustMonoid(name string) monoid.Monoid {
	m, err := monoid.ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

func rec(pairs ...any) values.Value {
	var fs []values.Field
	for i := 0; i < len(pairs); i += 2 {
		name := pairs[i].(string)
		var v values.Value
		switch x := pairs[i+1].(type) {
		case int:
			v = values.NewInt(int64(x))
		case float64:
			v = values.NewFloat(x)
		case string:
			v = values.NewString(x)
		case values.Value:
			v = x
		default:
			panic("bad pair")
		}
		fs = append(fs, values.Field{Name: name, Val: v})
	}
	return values.NewRecord(fs...)
}

func testCatalog() MapCatalog {
	emps := []values.Value{
		rec("id", 1, "name", "ada", "deptNo", 10, "salary", 100.0),
		rec("id", 2, "name", "bob", "deptNo", 10, "salary", 80.0),
		rec("id", 3, "name", "eve", "deptNo", 20, "salary", 120.0),
		rec("id", 4, "name", "dan", "deptNo", 30, "salary", 90.0),
	}
	depts := []values.Value{
		rec("id", 10, "deptName", "HR"),
		rec("id", 20, "deptName", "Eng"),
		rec("id", 30, "deptName", "Ops"),
	}
	orders := []values.Value{
		rec("eid", 1, "items", values.NewList(values.NewInt(5), values.NewInt(7))),
		rec("eid", 3, "items", values.NewList(values.NewInt(2))),
	}
	return MapCatalog{
		"Employees":   &SliceSource{SrcName: "Employees", Rows: emps},
		"Departments": &SliceSource{SrcName: "Departments", Rows: depts},
		"Orders":      &SliceSource{SrcName: "Orders", Rows: orders},
	}
}

func sourceSet(cat MapCatalog) map[string]bool {
	out := map[string]bool{}
	for k := range cat {
		out[k] = true
	}
	return out
}

func translate(t *testing.T, src string, cat MapCatalog) *Reduce {
	t.Helper()
	e, err := mcl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	norm := mcl.Normalize(e)
	plan, err := Translate(norm, sourceSet(cat))
	if err != nil {
		t.Fatalf("translate %q: %v", src, err)
	}
	return plan
}

func runRef(t *testing.T, src string, cat MapCatalog) values.Value {
	t.Helper()
	plan := translate(t, src, cat)
	v, err := Reference{}.Run(plan, cat)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return v
}

// evalDirect evaluates against the calculus interpreter with materialized
// sources — the ground truth.
func evalDirect(t *testing.T, src string, cat MapCatalog) values.Value {
	t.Helper()
	bindings := map[string]values.Value{}
	for name := range cat {
		v, err := Materialize(cat, name)
		if err != nil {
			t.Fatal(err)
		}
		bindings[name] = v
	}
	e, err := mcl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := mcl.Eval(e, mcl.NewEnv(bindings))
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestTranslateShape(t *testing.T) {
	cat := testCatalog()
	plan := translate(t, `for { e <- Employees, d <- Departments,
	        e.deptNo = d.id, d.deptName = "HR"} yield sum 1`, cat)
	s := Format(plan)
	for _, want := range []string{"Reduce[sum]", "Select", "Product", "Scan(Employees as e)", "Scan(Departments as d)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan missing %q:\n%s", want, s)
		}
	}
}

func TestTranslateGenerate(t *testing.T) {
	cat := testCatalog()
	plan := translate(t, "for { o <- Orders, i <- o.items } yield sum i", cat)
	s := Format(plan)
	if !strings.Contains(s, "Generate(i <- o.items)") {
		t.Fatalf("plan missing unnest Generate:\n%s", s)
	}
}

func TestTranslateRejectsBareExpr(t *testing.T) {
	e := mcl.MustParse("1 + 2")
	if _, err := Translate(e, nil); err == nil {
		t.Fatal("bare expression should not translate")
	}
}

func TestReferenceMatchesEval(t *testing.T) {
	cat := testCatalog()
	queries := []string{
		`for { e <- Employees } yield count e`,
		`for { e <- Employees, e.salary > 85 } yield sum e.salary`,
		`for { e <- Employees, d <- Departments, e.deptNo = d.id, d.deptName = "HR" } yield sum 1`,
		`for { e <- Employees, d <- Departments, e.deptNo = d.id } yield bag (n := e.name, dep := d.deptName)`,
		`for { o <- Orders, i <- o.items, i > 3 } yield list i`,
		`for { e <- Employees, b := e.salary * 0.1, b > 9.0 } yield set e.name`,
		`for { e <- Employees } yield max e.salary`,
		`for { e <- Employees } yield avg e.salary`,
		`for { e <- Employees, o <- Orders, e.id = o.eid, i <- o.items } yield sum i`,
		`for { d <- Departments } yield list (dep := d.deptName,
		     cnt := for { e <- Employees, e.deptNo = d.id } yield count e)`,
	}
	for _, q := range queries {
		want := evalDirect(t, q, cat)
		got := runRef(t, q, cat)
		if !values.Equal(got, want) {
			t.Fatalf("%s:\nalgebra: %v\ncalculus: %v", q, got, want)
		}
	}
}

func TestJoinPlanMatchesProductSelect(t *testing.T) {
	cat := testCatalog()
	// Hand-build the Join form of the HR query and compare with the
	// Product+Select translation.
	joinPlan := &Reduce{
		M:    mustMonoid("sum"),
		Head: mcl.MustParse("1"),
		Input: &Select{
			Pred: mcl.MustParse(`d.deptName = "HR"`),
			Input: &Join{
				L:  &Scan{Source: "Employees", Var: "e"},
				R:  &Scan{Source: "Departments", Var: "d"},
				On: []EquiPair{{LExpr: mcl.MustParse("e.deptNo"), RExpr: mcl.MustParse("d.id")}},
			},
		},
	}
	got, err := Reference{}.Run(joinPlan, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := runRef(t, `for { e <- Employees, d <- Departments,
	        e.deptNo = d.id, d.deptName = "HR"} yield sum 1`, cat)
	if !values.Equal(got, want) {
		t.Fatalf("join plan = %v, product plan = %v", got, want)
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	cat := MapCatalog{
		"L": &SliceSource{SrcName: "L", Rows: []values.Value{
			rec("k", values.Null, "v", 1),
			rec("k", 7, "v", 2),
		}},
		"R": &SliceSource{SrcName: "R", Rows: []values.Value{
			rec("k", values.Null, "w", 10),
			rec("k", 7, "w", 20),
		}},
	}
	joinPlan := &Reduce{
		M:    mustMonoid("count"),
		Head: mcl.MustParse("1"),
		Input: &Join{
			L:  &Scan{Source: "L", Var: "l"},
			R:  &Scan{Source: "R", Var: "r"},
			On: []EquiPair{{LExpr: mcl.MustParse("l.k"), RExpr: mcl.MustParse("r.k")}},
		},
	}
	got, err := Reference{}.Run(joinPlan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 1 {
		t.Fatalf("null keys matched: count = %v, want 1", got)
	}
}

func TestScanFilterAndFields(t *testing.T) {
	cat := testCatalog()
	plan := &Reduce{
		M:    mustMonoid("count"),
		Head: mcl.MustParse("1"),
		Input: &Scan{
			Source: "Employees", Var: "e",
			Fields: []string{"salary"},
			Filter: mcl.MustParse("e.salary > 85"),
		},
	}
	got, err := Reference{}.Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 3 {
		t.Fatalf("filtered scan count = %v, want 3", got)
	}
}

func TestUsedSourceFields(t *testing.T) {
	cat := testCatalog()
	plan := translate(t, `for { e <- Employees, d <- Departments,
	        e.deptNo = d.id, e.salary > 50 } yield bag (n := e.name)`, cat)
	fields, whole := UsedSourceFields(plan, "e")
	if whole {
		t.Fatal("e reported as used whole")
	}
	want := map[string]bool{"deptNo": true, "salary": true, "name": true}
	if len(fields) != len(want) {
		t.Fatalf("fields = %v", fields)
	}
	for _, f := range fields {
		if !want[f] {
			t.Fatalf("unexpected field %q", f)
		}
	}
	// A query yielding the whole record must report usedWhole.
	plan2 := translate(t, "for { e <- Employees } yield bag e", cat)
	if _, whole := UsedSourceFields(plan2, "e"); !whole {
		t.Fatal("whole-record use not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	cat := testCatalog()
	plan := translate(t, "for { e <- Employees, e.id > 1 } yield count e", cat)
	cp := Clone(plan).(*Reduce)
	// Mutating the clone's scan fields must not affect the original.
	var findScan func(Plan) *Scan
	findScan = func(p Plan) *Scan {
		if s, ok := p.(*Scan); ok {
			return s
		}
		for _, in := range p.Inputs() {
			if s := findScan(in); s != nil {
				return s
			}
		}
		return nil
	}
	s1, s2 := findScan(plan), findScan(cp)
	s2.Fields = append(s2.Fields, "tampered")
	for _, f := range s1.Fields {
		if f == "tampered" {
			t.Fatal("Clone shares Fields slice")
		}
	}
}

// TestRandomizedAlgebraEquivalence cross-checks translation+reference
// execution against direct calculus evaluation on randomized data.
func TestRandomizedAlgebraEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	queries := []string{
		"for { x <- Xs, x.a > 2 } yield sum x.b",
		"for { x <- Xs, y <- Ys, x.a = y.a } yield count x",
		"for { x <- Xs, y <- Ys, x.a = y.a, x.b > y.b } yield bag (p := x.b, q := y.b)",
		"for { x <- Xs, v := x.a + x.b, v % 2 = 0 } yield list v",
		"for { x <- Xs } yield set x.a",
		"for { x <- Xs, x.a > 0 or x.b > 3 } yield count x",
	}
	for trial := 0; trial < 25; trial++ {
		mk := func(n int) []values.Value {
			rows := make([]values.Value, n)
			for i := range rows {
				rows[i] = rec("a", r.Intn(5), "b", r.Intn(5))
			}
			return rows
		}
		cat := MapCatalog{
			"Xs": &SliceSource{SrcName: "Xs", Rows: mk(r.Intn(8))},
			"Ys": &SliceSource{SrcName: "Ys", Rows: mk(r.Intn(6))},
		}
		for _, q := range queries {
			want := evalDirect(t, q, cat)
			got := runRef(t, q, cat)
			if !values.Equal(got, want) {
				t.Fatalf("%s diverged:\nalgebra: %v\ncalculus: %v", q, got, want)
			}
		}
	}
}
