package trace

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.ID() != "" || tr.Root() != nil || tr.Snapshot() != nil {
		t.Fatal("nil tracer must absorb calls")
	}
	tr.Finish()

	var s *Span
	s.End()
	s.SetAttr("k", 1)
	s.AddRows(5)
	s.AddBytes(5)
	s.AddBatches(1)
	s.Event("e", time.Millisecond)
	if s.Child("c") != nil {
		t.Fatal("nil span must yield nil children")
	}
	if s.Rows() != 0 || s.Duration() != 0 {
		t.Fatal("nil span must report zeros")
	}

	var n *SpanNode
	n.Walk(func(*SpanNode) { t.Fatal("nil node must not be visited") })
	if n.Find("x") != nil || n.Duration() != 0 {
		t.Fatal("nil node must report zeros")
	}
}

func TestNilSpanZeroAllocs(t *testing.T) {
	var s *Span
	allocs := testing.AllocsPerRun(100, func() {
		s.AddRows(1)
		s.AddBytes(8)
		s.AddBatches(1)
		s.Child("scan").End()
	})
	if allocs != 0 {
		t.Fatalf("disarmed span ops allocated %v times per run", allocs)
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(NewID(), "request")
	root := tr.Root()
	scan := root.Child("scan")
	scan.AddRows(100)
	scan.AddBytes(4096)
	scan.AddBatches(2)
	scan.SetAttr("source", "Patients")
	scan.SetAttr("mode", "raw")
	scan.SetAttr("mode", "cache") // later set wins
	scan.Event("posmap_build", 3*time.Millisecond, Attr{Key: "builds", Val: int64(1)})
	scan.End()
	fold := root.Child("fold")
	// deliberately left open: Finish must close it
	_ = fold
	time.Sleep(time.Millisecond)
	tr.Finish()

	snap := tr.Snapshot()
	if snap == nil || snap.Name != "request" {
		t.Fatalf("bad root: %+v", snap)
	}
	if snap.DurationMS <= 0 {
		t.Fatalf("root duration not settled: %v", snap.DurationMS)
	}
	sc := snap.Find("scan")
	if sc == nil {
		t.Fatal("scan span missing")
	}
	if sc.Rows != 100 || sc.Bytes != 4096 || sc.Batches != 2 {
		t.Fatalf("scan counters wrong: %+v", sc)
	}
	if sc.Attrs["mode"] != "cache" || sc.Attrs["source"] != "Patients" {
		t.Fatalf("scan attrs wrong: %+v", sc.Attrs)
	}
	pb := snap.Find("posmap_build")
	if pb == nil || pb.DurationMS < 2.5 {
		t.Fatalf("posmap_build event wrong: %+v", pb)
	}
	fo := snap.Find("fold")
	if fo == nil || fo.DurationMS <= 0 {
		t.Fatalf("open child not closed by Finish: %+v", fo)
	}
	if snap.Find("nonexistent") != nil {
		t.Fatal("Find invented a span")
	}

	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

func TestEndIdempotent(t *testing.T) {
	s := newSpan("x")
	time.Sleep(time.Millisecond)
	s.End()
	d := s.Duration()
	if d <= 0 {
		t.Fatal("duration not set")
	}
	time.Sleep(time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatal("second End overwrote duration")
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("background ctx must be disarmed")
	}
	tr := New("q-1", "request")
	ctx := WithTracer(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("tracer lost in context")
	}
}

func TestNewIDUnique(t *testing.T) {
	a, b := NewID(), NewID()
	if a == b || a == "" {
		t.Fatalf("ids not unique: %q %q", a, b)
	}
}
