// Package trace is the engine's query-level execution tracer: a
// lightweight span recorder threaded through the life of a query —
// frontend, admission wait, scans, folds, joins — and surfaced as the
// span tree behind /explain?analyze=true, the /debug/queries profile
// ring and the per-phase latency histograms on /metrics.
//
// The design center is the disarmed cost. ViDa moves database cost into
// the query itself (posmap builds, first-touch scans, cache harvests),
// so the tracer must observe exactly those phases without taxing the
// warm fast path: a query that runs without a tracer carries a nil
// *Span through every instrumentation site, and every Span method is
// nil-safe — a disarmed site is a pointer test, no allocation, no
// atomic. Arming is per-query: attach a Tracer to the request context
// with WithTracer and every layer below picks it up via FromContext.
//
// Concurrency: spans are written by morsel workers in parallel, so the
// hot counters (rows, bytes, batches) are atomics and child creation
// takes the parent's mutex. End is idempotent (first caller wins), and
// Tracer.Finish closes any span still open — a parallel scan span whose
// morsels finish with the job does not need its own End bookkeeping.
package trace

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records one query's span tree, identified by a query ID that
// the serving layer returns to clients (X-Vida-Query-Id) so profiles
// can be correlated with responses.
type Tracer struct {
	id   string
	root *Span
}

// New starts a tracer whose root span (named name) begins now.
func New(id, name string) *Tracer {
	return &Tracer{id: id, root: newSpan(name)}
}

// ID returns the query ID. Nil-safe.
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span. Nil-safe: a nil tracer yields a nil span,
// which absorbs every operation.
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root and closes every span still open (parallel scan
// spans, spans abandoned by an error path) so the snapshot is fully
// settled. Nil-safe.
func (t *Tracer) Finish() {
	if t == nil {
		return
	}
	t.root.endTree()
}

// Snapshot renders the settled span tree. Call after Finish. Nil-safe
// (returns nil).
func (t *Tracer) Snapshot() *SpanNode {
	if t == nil {
		return nil
	}
	return t.root.snapshot(t.root.start)
}

type ctxKey struct{}

// WithTracer arms ctx with t: every FromContext below this point sees
// the tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tracer armed on ctx, or nil (disarmed).
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(ctxKey{}).(*Tracer)
	return t
}

// Span is one timed region of query execution. The zero of everything
// is a nil *Span, on which every method is a no-op — instrumentation
// sites never branch on "is tracing on", they just call through.
type Span struct {
	name  string
	start time.Time
	endNS atomic.Int64 // duration in nanos once ended; 0 = still open

	// Hot counters, accumulated lock-free by (possibly parallel)
	// producers.
	rows    atomic.Int64
	bytes   atomic.Int64
	batches atomic.Int64

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val any
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a sub-span under s. Nil-safe: a nil parent yields a nil
// child.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Event records a completed child span with an externally measured
// duration (e.g. a positional-map build observed through the reader's
// counters rather than timed in line). Nil-safe.
func (s *Span) Event(name string, d time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	c := &Span{name: name, start: time.Now().Add(-d)}
	if d <= 0 {
		d = 1 // a zero endNS means "open"; clamp to a visible tick
	}
	c.endNS.Store(int64(d))
	c.attrs = attrs
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End closes the span. Idempotent: the first End wins, so a span shared
// with a deferred cleanup cannot be double-counted. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if d <= 0 {
		d = 1
	}
	s.endNS.CompareAndSwap(0, int64(d))
}

// endTree ends s and every descendant still open.
func (s *Span) endTree() {
	s.End()
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.endTree()
	}
}

// SetAttr annotates the span. Later sets of the same key win at
// snapshot time. Nil-safe.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// AddRows accumulates processed rows. Nil-safe, lock-free.
func (s *Span) AddRows(n int64) {
	if s == nil {
		return
	}
	s.rows.Add(n)
}

// AddBytes accumulates processed bytes. Nil-safe, lock-free.
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.bytes.Add(n)
}

// AddBatches accumulates processed batches. Nil-safe, lock-free.
func (s *Span) AddBatches(n int64) {
	if s == nil {
		return
	}
	s.batches.Add(n)
}

// Rows returns the accumulated row count. Nil-safe.
func (s *Span) Rows() int64 {
	if s == nil {
		return 0
	}
	return s.rows.Load()
}

// Duration returns the span's settled duration (0 while open). Nil-safe.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.endNS.Load())
}

// SpanNode is the JSON rendering of one settled span.
type SpanNode struct {
	Name string `json:"name"`
	// StartOffMS is the span's start relative to the root, DurationMS its
	// wall time; both in milliseconds for direct reading.
	StartOffMS float64        `json:"start_off_ms"`
	DurationMS float64        `json:"duration_ms"`
	Rows       int64          `json:"rows,omitempty"`
	Bytes      int64          `json:"bytes,omitempty"`
	Batches    int64          `json:"batches,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanNode    `json:"children,omitempty"`
}

func (s *Span) snapshot(origin time.Time) *SpanNode {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	n := &SpanNode{
		Name:       s.name,
		StartOffMS: float64(s.start.Sub(origin).Microseconds()) / 1000,
		DurationMS: float64(time.Duration(s.endNS.Load()).Microseconds()) / 1000,
		Rows:       s.rows.Load(),
		Bytes:      s.bytes.Load(),
		Batches:    s.batches.Load(),
	}
	if len(attrs) > 0 {
		n.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			n.Attrs[a.Key] = a.Val
		}
	}
	for _, c := range kids {
		n.Children = append(n.Children, c.snapshot(origin))
	}
	return n
}

// Walk visits n and every descendant depth-first. Nil-safe.
func (n *SpanNode) Walk(fn func(*SpanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns the first span (depth-first) with the given name, or
// nil. Nil-safe.
func (n *SpanNode) Find(name string) *SpanNode {
	var found *SpanNode
	n.Walk(func(s *SpanNode) {
		if found == nil && s.Name == name {
			found = s
		}
	})
	return found
}

// Duration returns the node's wall time as a time.Duration.
func (n *SpanNode) Duration() time.Duration {
	if n == nil {
		return 0
	}
	return time.Duration(n.DurationMS * float64(time.Millisecond))
}

// idCounter + idPrefix make NewID unique within and across processes:
// the prefix mixes the process start time and pid, the counter orders
// queries within the process.
var (
	idCounter atomic.Uint64
	idPrefix  = fmt.Sprintf("%x-%x", time.Now().UnixNano()&0xffffff, os.Getpid()&0xffff)
)

// NewID returns a fresh query ID ("1a2b3c-d4e5-7" style: process
// prefix, then a per-process sequence number).
func NewID() string {
	return fmt.Sprintf("%s-%d", idPrefix, idCounter.Add(1))
}
