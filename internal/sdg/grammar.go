package sdg

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseType parses the textual source description grammar into a Type.
// The grammar (paper §3.1):
//
//	type  := prim | record | coll | array | ident
//	prim  := "int" | "float" | "bool" | "string"
//	record:= "Record" "(" att { "," att } ")"
//	att   := "Att" "(" name [ "," type ] ")"       // untyped Att defaults to string
//	coll  := ("List"|"Bag"|"Set") "(" type ")"
//	array := "Array" "(" dim { "," dim } "," att ")"
//	dim   := "Dim" "(" name "," prim ")"
//
// Named type references may be resolved through defs, supporting the
// paper's two-part example where "val = Record(...)" is declared separately:
//
//	Array(Dim(i,int), Dim(j,int), Att(val))
//	val = Record(Att(elevation,float), Att(temperature,float))
func ParseType(src string, defs map[string]*Type) (*Type, error) {
	p := &typeParser{src: src, defs: defs}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("sdg: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return t, nil
}

// ParseSchema parses a multi-declaration schema description. The first
// declaration (or a declaration named "schema") is the root; subsequent
// lines of the form "name = type" define named types referenced by
// untyped Att(name) attributes.
func ParseSchema(src string) (*Type, error) {
	var rootSrc string
	defs := map[string]*Type{}
	type pending struct {
		name string
		src  string
	}
	var decls []pending
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, rhs, ok := splitDecl(line); ok {
			decls = append(decls, pending{name, rhs})
			continue
		}
		if rootSrc != "" {
			rootSrc += " "
		}
		rootSrc += line
	}
	if rootSrc == "" {
		return nil, fmt.Errorf("sdg: schema has no root type declaration")
	}
	// Declarations may reference each other; resolve in reverse order so
	// the paper's style (root first, definitions after) works.
	for i := len(decls) - 1; i >= 0; i-- {
		t, err := ParseType(decls[i].src, defs)
		if err != nil {
			return nil, fmt.Errorf("sdg: in declaration %q: %w", decls[i].name, err)
		}
		defs[decls[i].name] = t
	}
	return ParseType(rootSrc, defs)
}

// splitDecl splits "name = type" declarations; it rejects lines whose '='
// appears inside parentheses (which would be part of an expression).
func splitDecl(line string) (name, rhs string, ok bool) {
	depth := 0
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '(':
			depth++
		case ')':
			depth--
		case '=':
			if depth == 0 {
				name = strings.TrimSpace(line[:i])
				rhs = strings.TrimSpace(line[i+1:])
				return name, rhs, isIdent(name)
			}
		}
	}
	return "", "", false
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if !(unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r))) {
			return false
		}
	}
	return true
}

type typeParser struct {
	src  string
	pos  int
	defs map[string]*Type
}

func (p *typeParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *typeParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *typeParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("sdg: expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *typeParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *typeParser) parseType() (*Type, error) {
	name := p.ident()
	switch name {
	case "int":
		return Int, nil
	case "float", "double":
		return Float, nil
	case "bool", "boolean":
		return Bool, nil
	case "string", "text":
		return String, nil
	case "Record":
		return p.parseRecord()
	case "List", "Bag", "Set":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		switch name {
		case "List":
			return List(elem), nil
		case "Bag":
			return Bag(elem), nil
		default:
			return Set(elem), nil
		}
	case "Array":
		return p.parseArray()
	case "":
		return nil, fmt.Errorf("sdg: expected type at offset %d", p.pos)
	default:
		if t, ok := p.defs[name]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("sdg: unknown type %q at offset %d", name, p.pos)
	}
}

func (p *typeParser) parseRecord() (*Type, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var attrs []Attr
	for {
		a, err := p.parseAtt()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return Record(attrs...), nil
}

func (p *typeParser) parseAtt() (Attr, error) {
	kw := p.ident()
	if kw != "Att" {
		return Attr{}, fmt.Errorf("sdg: expected Att, got %q at offset %d", kw, p.pos)
	}
	if err := p.expect('('); err != nil {
		return Attr{}, err
	}
	name := p.ident()
	if name == "" {
		return Attr{}, fmt.Errorf("sdg: attribute needs a name at offset %d", p.pos)
	}
	typ := Unknown
	if p.peek() == ',' {
		p.pos++
		t, err := p.parseType()
		if err != nil {
			return Attr{}, err
		}
		typ = t
	} else if t, ok := p.defs[name]; ok {
		// Untyped attribute resolved through a named definition,
		// supporting the paper's "Att(val)" + "val = Record(...)" style.
		typ = t
	} else if typ == Unknown {
		typ = String
	}
	if err := p.expect(')'); err != nil {
		return Attr{}, err
	}
	return Attr{Name: name, Type: typ}, nil
}

func (p *typeParser) parseArray() (*Type, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var dims []Dim
	var elem *Type
	for {
		kw := p.ident()
		switch kw {
		case "Dim":
			if err := p.expect('('); err != nil {
				return nil, err
			}
			name := p.ident()
			if err := p.expect(','); err != nil {
				return nil, err
			}
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(')'); err != nil {
				return nil, err
			}
			dims = append(dims, Dim{Name: name, Type: t})
		case "Att":
			// Rewind so parseAtt sees the keyword.
			p.pos -= len("Att")
			a, err := p.parseAtt()
			if err != nil {
				return nil, err
			}
			elem = a.Type
		default:
			return nil, fmt.Errorf("sdg: expected Dim or Att in Array, got %q at offset %d", kw, p.pos)
		}
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("sdg: Array needs at least one Dim")
	}
	if elem == nil {
		return nil, fmt.Errorf("sdg: Array needs an Att cell declaration")
	}
	return Array(dims, elem), nil
}
