package sdg

import (
	"fmt"
	"sort"
	"strings"
)

// Format identifies the physical format of a raw data source.
type Format uint8

// The supported raw source formats. FormatTable denotes data already
// resident inside a loaded store (used when ViDa wraps a DBMS source).
const (
	FormatCSV Format = iota
	FormatJSON
	FormatArray
	FormatXLS
	FormatTable
)

// String returns the conventional name of the format.
func (f Format) String() string {
	switch f {
	case FormatCSV:
		return "csv"
	case FormatJSON:
		return "json"
	case FormatArray:
		return "array"
	case FormatXLS:
		return "xls"
	case FormatTable:
		return "table"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// ParseFormat maps a format name to its Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "csv":
		return FormatCSV, nil
	case "json":
		return FormatJSON, nil
	case "array", "bin", "binary":
		return FormatArray, nil
	case "xls":
		return FormatXLS, nil
	case "table", "dbms":
		return FormatTable, nil
	}
	return 0, fmt.Errorf("sdg: unknown format %q", s)
}

// Unit is the granularity of a single data access exposed by a source's
// reader (paper §3.1: element, row, column, chunk, object, page).
type Unit uint8

// The access units.
const (
	UnitElement Unit = iota
	UnitRow
	UnitColumn
	UnitChunk
	UnitObject
	UnitPage
)

// String returns the unit name.
func (u Unit) String() string {
	switch u {
	case UnitElement:
		return "element"
	case UnitRow:
		return "row"
	case UnitColumn:
		return "column"
	case UnitChunk:
		return "chunk"
	case UnitObject:
		return "object"
	case UnitPage:
		return "page"
	default:
		return fmt.Sprintf("unit(%d)", uint8(u))
	}
}

// AccessPathKind enumerates the ways a source can be read.
type AccessPathKind uint8

// The access path kinds: full sequential scan, direct access by row/object
// identifier, and attribute-indexed access (e.g. an existing DBMS index or
// a ViDa positional structure).
const (
	PathSeqScan AccessPathKind = iota
	PathRowID
	PathIndex
)

// String returns the access path name.
func (k AccessPathKind) String() string {
	switch k {
	case PathSeqScan:
		return "seqscan"
	case PathRowID:
		return "rowid"
	case PathIndex:
		return "index"
	default:
		return fmt.Sprintf("path(%d)", uint8(k))
	}
}

// AccessPath describes one exposed access path. Attr is set for PathIndex.
type AccessPath struct {
	Kind AccessPathKind
	Attr string
}

// Description captures everything ViDa needs to know about a raw dataset:
// its schema, the unit of data its reader retrieves per access, and the
// access paths it exposes (paper §3.1). It is the catalog entry handed to
// the query engine so generated access paths can adapt to the instance.
type Description struct {
	Name    string
	Format  Format
	Path    string
	Schema  *Type
	Unit    Unit
	Paths   []AccessPath
	Options map[string]string
}

// Option returns the named option or a default.
func (d *Description) Option(key, def string) string {
	if v, ok := d.Options[key]; ok {
		return v
	}
	return def
}

// RowType returns the per-datum record type of the source: the element
// type for collections, the cell type for arrays, the schema itself for a
// bare record.
func (d *Description) RowType() *Type {
	s := d.Schema
	if s == nil {
		return Unknown
	}
	switch s.Kind {
	case TList, TBag, TSet:
		return s.Elem
	case TArray:
		return s.Elem
	default:
		return s
	}
}

// IterationType returns the record type a scan over this source actually
// yields. It equals RowType except for array sources, whose readers
// augment each cell with its dimension indices (UnitElement access yields
// (i, j, ...fields), paper §3.1) — so queries can filter and group on
// coordinates.
func (d *Description) IterationType() *Type {
	if d.Schema == nil || d.Schema.Kind != TArray {
		return d.RowType()
	}
	var attrs []Attr
	for _, dim := range d.Schema.Dims {
		attrs = append(attrs, Attr{Name: dim.Name, Type: Int})
	}
	elem := d.Schema.Elem
	if elem != nil && elem.Kind == TRecord {
		attrs = append(attrs, elem.Attrs...)
	} else if elem != nil {
		attrs = append(attrs, Attr{Name: "val", Type: elem})
	}
	return Record(attrs...)
}

// HasPath reports whether the source exposes an access path of kind k.
func (d *Description) HasPath(k AccessPathKind) bool {
	for _, p := range d.Paths {
		if p.Kind == k {
			return true
		}
	}
	return false
}

// Validate checks internal consistency of the description.
func (d *Description) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("sdg: description needs a name")
	}
	if d.Schema == nil {
		return fmt.Errorf("sdg: %s: description needs a schema", d.Name)
	}
	switch d.Format {
	case FormatCSV, FormatXLS, FormatTable:
		rt := d.RowType()
		if rt.Kind != TRecord {
			return fmt.Errorf("sdg: %s: %s source needs a record row type, got %s", d.Name, d.Format, rt)
		}
		for _, a := range rt.Attrs {
			if !a.Type.IsPrimitive() && a.Type.Kind != TUnknown {
				return fmt.Errorf("sdg: %s: %s attribute %q must be primitive, got %s", d.Name, d.Format, a.Name, a.Type)
			}
		}
	case FormatArray:
		if d.Schema.Kind != TArray {
			return fmt.Errorf("sdg: %s: array source needs an Array schema, got %s", d.Name, d.Schema)
		}
	case FormatJSON:
		// Any schema shape is admissible for JSON.
	default:
		return fmt.Errorf("sdg: %s: unknown format", d.Name)
	}
	if len(d.Paths) == 0 {
		return fmt.Errorf("sdg: %s: at least one access path required", d.Name)
	}
	return nil
}

// DefaultDescription builds a Description with the customary unit and
// access paths for the format: CSV/XLS/Table read rows sequentially and by
// rowid, JSON reads objects, arrays read chunks plus element addressing.
func DefaultDescription(name string, format Format, path string, schema *Type) *Description {
	d := &Description{Name: name, Format: format, Path: path, Schema: schema}
	switch format {
	case FormatCSV, FormatXLS, FormatTable:
		d.Unit = UnitRow
		d.Paths = []AccessPath{{Kind: PathSeqScan}, {Kind: PathRowID}}
	case FormatJSON:
		d.Unit = UnitObject
		d.Paths = []AccessPath{{Kind: PathSeqScan}, {Kind: PathRowID}}
	case FormatArray:
		d.Unit = UnitChunk
		d.Paths = []AccessPath{{Kind: PathSeqScan}, {Kind: PathRowID}}
	}
	return d
}

// String renders a single-line summary used in catalogs and EXPLAIN output.
func (d *Description) String() string {
	var opts string
	if len(d.Options) > 0 {
		keys := make([]string, 0, len(d.Options))
		for k := range d.Options {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + d.Options[k]
		}
		opts = " {" + strings.Join(parts, ", ") + "}"
	}
	return fmt.Sprintf("%s [%s unit=%s] %s%s", d.Name, d.Format, d.Unit, d.Schema, opts)
}
