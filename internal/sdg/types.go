// Package sdg implements ViDa's source description grammar (paper §3.1):
// a minimal schema language rich enough to describe the structure of raw
// heterogeneous datasets — tables in CSV, hierarchies in JSON, matrices in
// binary array files — together with the access "unit" each format exposes
// and its available access paths. The same structural types double as the
// type system of the comprehension language.
package sdg

import (
	"fmt"
	"strings"

	"vida/internal/values"
)

// TypeKind discriminates structural types.
type TypeKind uint8

// The structural type kinds.
const (
	TUnknown TypeKind = iota
	TBool
	TInt
	TFloat
	TString
	TRecord
	TList
	TBag
	TSet
	TArray
)

// String returns the grammar keyword for the kind.
func (k TypeKind) String() string {
	switch k {
	case TUnknown:
		return "unknown"
	case TBool:
		return "bool"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TRecord:
		return "Record"
	case TList:
		return "List"
	case TBag:
		return "Bag"
	case TSet:
		return "Set"
	case TArray:
		return "Array"
	default:
		return fmt.Sprintf("TypeKind(%d)", uint8(k))
	}
}

// Attr is a named attribute of a record type.
type Attr struct {
	Name string
	Type *Type
}

// Dim is a named dimension of an array type; its Type is the index type
// (int in practice, per the paper's Array(Dim(i,int), Dim(j,int), ...) form).
type Dim struct {
	Name string
	Type *Type
}

// Type is a structural type: a primitive, a record, a collection or an
// array. Types are immutable after construction.
type Type struct {
	Kind  TypeKind
	Attrs []Attr // TRecord
	Elem  *Type  // TList/TBag/TSet element, TArray cell
	Dims  []Dim  // TArray
}

// Primitive type singletons.
var (
	Bool    = &Type{Kind: TBool}
	Int     = &Type{Kind: TInt}
	Float   = &Type{Kind: TFloat}
	String  = &Type{Kind: TString}
	Unknown = &Type{Kind: TUnknown}
)

// Record builds a record type from attributes.
func Record(attrs ...Attr) *Type { return &Type{Kind: TRecord, Attrs: attrs} }

// List builds a list type.
func List(elem *Type) *Type { return &Type{Kind: TList, Elem: elem} }

// Bag builds a bag type.
func Bag(elem *Type) *Type { return &Type{Kind: TBag, Elem: elem} }

// Set builds a set type.
func Set(elem *Type) *Type { return &Type{Kind: TSet, Elem: elem} }

// Array builds an array type with named dimensions and a cell type.
func Array(dims []Dim, elem *Type) *Type { return &Type{Kind: TArray, Dims: dims, Elem: elem} }

// IsPrimitive reports whether t is a scalar type.
func (t *Type) IsPrimitive() bool {
	switch t.Kind {
	case TBool, TInt, TFloat, TString:
		return true
	}
	return false
}

// IsCollection reports whether t is a list, bag or set.
func (t *Type) IsCollection() bool {
	switch t.Kind {
	case TList, TBag, TSet:
		return true
	}
	return false
}

// IsNumeric reports whether t is int or float.
func (t *Type) IsNumeric() bool { return t.Kind == TInt || t.Kind == TFloat }

// Attr returns the attribute with the given name, if present.
func (t *Type) Attr(name string) (Attr, bool) {
	if t.Kind != TRecord {
		return Attr{}, false
	}
	for _, a := range t.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attr{}, false
}

// AttrNames returns the names of all record attributes in order.
func (t *Type) AttrNames() []string {
	names := make([]string, len(t.Attrs))
	for i, a := range t.Attrs {
		names[i] = a.Name
	}
	return names
}

// Equal reports structural type equality. Unknown equals nothing but
// itself.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TRecord:
		if len(t.Attrs) != len(o.Attrs) {
			return false
		}
		for i := range t.Attrs {
			if t.Attrs[i].Name != o.Attrs[i].Name || !t.Attrs[i].Type.Equal(o.Attrs[i].Type) {
				return false
			}
		}
		return true
	case TList, TBag, TSet:
		return t.Elem.Equal(o.Elem)
	case TArray:
		if len(t.Dims) != len(o.Dims) {
			return false
		}
		for i := range t.Dims {
			if t.Dims[i].Name != o.Dims[i].Name || !t.Dims[i].Type.Equal(o.Dims[i].Type) {
				return false
			}
		}
		return t.Elem.Equal(o.Elem)
	default:
		return true
	}
}

// String renders the type in grammar syntax, e.g.
// Record(Att(id, int), Att(vals, List(float))).
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	var sb strings.Builder
	t.write(&sb)
	return sb.String()
}

func (t *Type) write(sb *strings.Builder) {
	switch t.Kind {
	case TBool, TInt, TFloat, TString, TUnknown:
		sb.WriteString(t.Kind.String())
	case TRecord:
		sb.WriteString("Record(")
		for i, a := range t.Attrs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("Att(")
			sb.WriteString(a.Name)
			sb.WriteString(", ")
			a.Type.write(sb)
			sb.WriteByte(')')
		}
		sb.WriteByte(')')
	case TList, TBag, TSet:
		sb.WriteString(t.Kind.String())
		sb.WriteByte('(')
		t.Elem.write(sb)
		sb.WriteByte(')')
	case TArray:
		sb.WriteString("Array(")
		for i, d := range t.Dims {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("Dim(")
			sb.WriteString(d.Name)
			sb.WriteString(", ")
			d.Type.write(sb)
			sb.WriteByte(')')
		}
		if len(t.Dims) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("Att(val, ")
		t.Elem.write(sb)
		sb.WriteString("))")
	}
}

// Conforms reports whether value v inhabits type t. Null conforms to every
// type (the calculus is null-tolerant); ints conform to float.
func Conforms(v values.Value, t *Type) bool {
	if v.IsNull() || t.Kind == TUnknown {
		return true
	}
	switch t.Kind {
	case TBool:
		return v.Kind() == values.KindBool
	case TInt:
		return v.Kind() == values.KindInt
	case TFloat:
		return v.IsNumeric()
	case TString:
		return v.Kind() == values.KindString
	case TRecord:
		if v.Kind() != values.KindRecord {
			return false
		}
		for _, a := range t.Attrs {
			fv, ok := v.Get(a.Name)
			if !ok || !Conforms(fv, a.Type) {
				return false
			}
		}
		return true
	case TList:
		return conformsElems(v, values.KindList, t.Elem)
	case TBag:
		return conformsElems(v, values.KindBag, t.Elem)
	case TSet:
		return conformsElems(v, values.KindSet, t.Elem)
	case TArray:
		if v.Kind() != values.KindArray || len(v.Dims()) != len(t.Dims) {
			return false
		}
		for _, e := range v.Elems() {
			if !Conforms(e, t.Elem) {
				return false
			}
		}
		return true
	}
	return false
}

func conformsElems(v values.Value, k values.Kind, elem *Type) bool {
	if v.Kind() != k {
		return false
	}
	for _, e := range v.Elems() {
		if !Conforms(e, elem) {
			return false
		}
	}
	return true
}
