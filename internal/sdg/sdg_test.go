package sdg

import (
	"strings"
	"testing"

	"vida/internal/values"
)

func TestParsePrimitives(t *testing.T) {
	for src, want := range map[string]*Type{
		"int": Int, "float": Float, "bool": Bool, "string": String,
		"double": Float, "boolean": Bool, "text": String,
	} {
		got, err := ParseType(src, nil)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", src, err)
		}
		if !got.Equal(want) {
			t.Fatalf("ParseType(%q) = %s, want %s", src, got, want)
		}
	}
}

func TestParseRecord(t *testing.T) {
	got, err := ParseType("Record(Att(id, int), Att(name, string), Att(scores, List(float)))", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Record(
		Attr{"id", Int},
		Attr{"name", String},
		Attr{"scores", List(Float)},
	)
	if !got.Equal(want) {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestParsePaperArrayExample(t *testing.T) {
	// Verbatim example from paper §3.1.
	src := `
		Array(Dim( i , int ) , Dim( j , int ) , Att( val ) )
		val = Record( Att( elevation , float ) , Att( temperature , float ) )
	`
	got, err := ParseSchema(src)
	if err != nil {
		t.Fatal(err)
	}
	want := Array(
		[]Dim{{"i", Int}, {"j", Int}},
		Record(Attr{"elevation", Float}, Attr{"temperature", Float}),
	)
	if !got.Equal(want) {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestParseUntypedAttDefaultsToString(t *testing.T) {
	got, err := ParseType("Record(Att(city))", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs[0].Type != String {
		t.Fatalf("untyped Att = %s, want string", got.Attrs[0].Type)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "Nope(int)", "Record()", "Record(Att(a, int)",
		"Array(Att(val, int))", "Array(Dim(i,int))", "int extra",
	} {
		if _, err := ParseType(src, nil); err == nil {
			t.Fatalf("ParseType(%q) should fail", src)
		}
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	srcs := []string{
		"Record(Att(id, int), Att(vals, Bag(Record(Att(x, float)))))",
		"Set(Record(Att(a, bool)))",
		"Array(Dim(i, int), Att(val, float))",
	}
	for _, src := range srcs {
		t1, err := ParseType(src, nil)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		t2, err := ParseType(t1.String(), nil)
		if err != nil {
			t.Fatalf("re-parse %q: %v", t1.String(), err)
		}
		if !t1.Equal(t2) {
			t.Fatalf("round trip changed type: %s vs %s", t1, t2)
		}
	}
}

func TestConforms(t *testing.T) {
	typ := Record(Attr{"id", Int}, Attr{"w", Float}, Attr{"tags", Set(String)})
	v := values.NewRecord(
		values.Field{Name: "id", Val: values.NewInt(1)},
		values.Field{Name: "w", Val: values.NewInt(3)}, // int conforms to float
		values.Field{Name: "tags", Val: values.NewSet(values.NewString("x"))},
	)
	if !Conforms(v, typ) {
		t.Fatal("value should conform")
	}
	bad := values.NewRecord(values.Field{Name: "id", Val: values.NewString("x")})
	if Conforms(bad, typ) {
		t.Fatal("bad value should not conform")
	}
	if !Conforms(values.Null, typ) {
		t.Fatal("null conforms to everything")
	}
}

func TestDescriptionValidate(t *testing.T) {
	schema := Bag(Record(Attr{"id", Int}, Attr{"name", String}))
	d := DefaultDescription("patients", FormatCSV, "/tmp/p.csv", schema)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid description rejected: %v", err)
	}
	if d.Unit != UnitRow {
		t.Fatalf("CSV default unit = %s", d.Unit)
	}
	if !d.HasPath(PathSeqScan) || !d.HasPath(PathRowID) {
		t.Fatal("CSV default paths missing")
	}
	if got := d.RowType(); got.Kind != TRecord || len(got.Attrs) != 2 {
		t.Fatalf("RowType = %s", got)
	}

	// CSV with nested attribute types must be rejected.
	nested := Bag(Record(Attr{"obj", Record(Attr{"x", Int})}))
	bad := DefaultDescription("bad", FormatCSV, "", nested)
	if err := bad.Validate(); err == nil {
		t.Fatal("nested CSV schema should be rejected")
	}

	// Array format needs an Array schema.
	badArr := DefaultDescription("arr", FormatArray, "", schema)
	if err := badArr.Validate(); err == nil {
		t.Fatal("non-array schema for array format should be rejected")
	}

	// JSON accepts hierarchies.
	j := DefaultDescription("brain", FormatJSON, "/tmp/b.json", List(Record(Attr{"region", Record(Attr{"n", Int})})))
	if err := j.Validate(); err != nil {
		t.Fatalf("JSON description rejected: %v", err)
	}
	if j.Unit != UnitObject {
		t.Fatalf("JSON default unit = %s", j.Unit)
	}
}

func TestDescriptionString(t *testing.T) {
	d := DefaultDescription("p", FormatCSV, "x.csv", Bag(Record(Attr{"a", Int})))
	d.Options = map[string]string{"delim": "|", "header": "true"}
	s := d.String()
	for _, want := range []string{"p", "csv", "unit=row", "delim=|", "header=true"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{
		"csv": FormatCSV, "JSON": FormatJSON, "binary": FormatArray,
		"xls": FormatXLS, "dbms": FormatTable,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("parquet"); err == nil {
		t.Fatal("unknown format should error")
	}
}
