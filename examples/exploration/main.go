// Exploration: the engine-mechanics tour — watch the auxiliary structures
// and caches do their work. Shows EXPLAIN plans with pushed-down filters
// and pruned projections, the positional map accelerating repeated CSV
// access, file updates invalidating state (paper §2.1), and the executor
// ablation (generated vs static operators) on the same plan.
// Run with: go run ./examples/exploration
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"vida"
)

func main() {
	dir, err := os.MkdirTemp("", "vida-exploration")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A moderately wide CSV: 40 columns, 20k rows.
	path := filepath.Join(dir, "wide.csv")
	f, err := os.Create(path)
	must(err)
	header := "id"
	for c := 1; c < 40; c++ {
		header += fmt.Sprintf(",c%d", c)
	}
	fmt.Fprintln(f, header)
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(f, "%d", i)
		for c := 1; c < 40; c++ {
			fmt.Fprintf(f, ",%d", (i*c)%1000)
		}
		fmt.Fprintln(f)
	}
	f.Close()

	schema := "Record(Att(id, int)"
	for c := 1; c < 40; c++ {
		schema += fmt.Sprintf(", Att(c%d, int)", c)
	}
	schema += ")"

	eng := vida.New()
	must(eng.RegisterCSV("Wide", path, schema, nil))

	// 1. The optimizer turns the comprehension into a physical plan with
	// the filter inside the scan and only the touched columns decoded.
	query := `for { w <- Wide, w.c7 > 500 } yield avg w.c39`
	plan, err := eng.Explain(query)
	must(err)
	fmt.Println("EXPLAIN", query)
	fmt.Print(plan)

	// 2. First access tokenizes raw bytes and builds the positional map;
	// repeats jump straight to the two columns.
	t0 := time.Now()
	res, err := eng.Query(query)
	must(err)
	cold := time.Since(t0)
	t0 = time.Now()
	_, err = eng.Query(query)
	must(err)
	warm := time.Since(t0)
	fmt.Printf("\navg = %s; cold %v → warm %v (%0.1fx)\n\n",
		res, cold.Round(time.Microsecond), warm.Round(time.Microsecond),
		float64(cold)/float64(warm))

	// 3. In-place file updates drop the affected auxiliary structures
	// (paper §2.1) — the next query sees the new data.
	before, _ := eng.Query(`for { w <- Wide } yield count 1`)
	appendRow(path)
	must(eng.Refresh())
	after, err := eng.Query(`for { w <- Wide } yield count 1`)
	must(err)
	fmt.Printf("rows before append: %s, after Refresh: %s\n\n", before, after)

	// 4. The same plan on the two executors: generated operators vs the
	// pre-cooked channel-pipelined engine (the paper's static executor).
	// Both engines get one warm-up run so the comparison measures pure
	// execution, not first-touch raw parsing (the Refresh above dropped
	// eng's caches).
	staticEng := vida.New(vida.WithStaticExecutor())
	must(staticEng.RegisterCSV("Wide", path, schema, nil))
	_, _ = staticEng.Query(query)
	_, _ = eng.Query(query)
	t0 = time.Now()
	_, err = eng.Query(query)
	must(err)
	jit := time.Since(t0)
	t0 = time.Now()
	_, err = staticEng.Query(query)
	must(err)
	static := time.Since(t0)
	fmt.Printf("same query: generated operators %v, static operators %v (%.1fx)\n",
		jit.Round(time.Microsecond), static.Round(time.Microsecond),
		float64(static)/float64(jit))
}

func appendRow(path string) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	must(err)
	defer f.Close()
	fmt.Fprintf(f, "999999")
	for c := 1; c < 40; c++ {
		fmt.Fprintf(f, ",1")
	}
	fmt.Fprintln(f)
	// Make sure the mtime visibly moves even on coarse filesystems.
	now := time.Now().Add(2 * time.Second)
	must(os.Chtimes(path, now, now))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
