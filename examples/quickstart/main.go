// Quickstart: query a raw CSV and a raw JSON file together with no
// loading step — ViDa's "data analysts build databases by launching
// queries" workflow. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vida"
)

func main() {
	dir, err := os.MkdirTemp("", "vida-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Two raw files land in your directory — a CSV of employees and a
	// JSON array of departments. Nobody loads anything anywhere.
	emps := filepath.Join(dir, "employees.csv")
	os.WriteFile(emps, []byte(
		"id,name,deptNo,salary\n"+
			"1,ada,10,100\n2,bob,10,80\n3,eve,20,120\n4,dan,30,90\n"), 0o644)
	depts := filepath.Join(dir, "departments.json")
	os.WriteFile(depts, []byte(
		`[{"id": 10, "deptName": "HR"},
		  {"id": 20, "deptName": "Eng"},
		  {"id": 30, "deptName": "Ops"}]`), 0o644)

	// A virtual database over the raw files: schemas are declared in the
	// source description grammar; the JSON side stays schema-free.
	eng := vida.New()
	must(eng.RegisterCSV("Employees", emps,
		"Record(Att(id, int), Att(name, string), Att(deptNo, int), Att(salary, float))", nil))
	must(eng.RegisterJSON("Departments", depts, ""))

	// The paper's own query (§3.2), in the monoid comprehension language.
	res, err := eng.Query(`for { e <- Employees, d <- Departments,
	        e.deptNo = d.id, d.deptName = "HR"} yield sum 1`)
	must(err)
	fmt.Println("employees in HR:", res) // 2

	// The same query in SQL, via the syntactic-sugar translation layer.
	res, err = eng.QuerySQL(`SELECT COUNT(e.id)
	    FROM Employees e JOIN Departments d ON (e.deptNo = d.id)
	    WHERE d.deptName = 'HR'`)
	must(err)
	fmt.Println("same, via SQL:  ", res)

	// Results can be reshaped ("virtualized") on the fly: nested records
	// built from flat CSV rows joined with JSON objects.
	res, err = eng.Query(`for { e <- Employees, d <- Departments, e.deptNo = d.id }
	        yield bag (who := e.name, where := d.deptName, pay := e.salary)`)
	must(err)
	for _, row := range res.Rows() {
		fmt.Printf("  %s works in %s for %.0f\n",
			row.Field("who").Str(), row.Field("where").Str(), row.Field("pay").Float())
	}

	// Second touch of the same fields is served from ViDa's caches.
	_, err = eng.Query(`for { e <- Employees } yield avg e.salary`)
	must(err)
	_, err = eng.Query(`for { e <- Employees } yield max e.salary`)
	must(err)
	st := eng.Stats()
	fmt.Printf("queries: %d, served from caches: %d, touched raw files: %d\n",
		st.Queries, st.QueriesFromCache, st.QueriesTouchedRaw)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
