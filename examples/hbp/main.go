// HBP: the paper's Human Brain Project scenario (§1.1, §6) at a small
// scale — patient records and genetics in CSV, MRI-derived brain-region
// hierarchies in JSON, none of which may be moved or transformed. The
// analysis runs epidemiological exploration first, then interactive
// three-way joins, and prints how the engine's caches and positional
// structures grow with the workload. Run with: go run ./examples/hbp
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"vida"
	"vida/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "vida-hbp")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate the hospital's raw files (Table 2 shapes at 1% scale).
	sc := workload.Factor(0.01)
	paths, err := workload.GenerateAll(dir, sc, 7)
	must(err)
	fmt.Printf("raw files: %d patients × %d cols, %d genetics × %d cols, %d region objects\n\n",
		sc.PatientsRows, sc.PatientsCols, sc.GeneticsRows, sc.GeneticsCols, sc.RegionsObjects)

	eng := vida.New()
	must(eng.RegisterCSV("Patients", paths.Patients, workload.PatientsSchema(sc), nil))
	must(eng.RegisterCSV("Genetics", paths.Genetics, workload.GeneticsSchema(sc), nil))
	must(eng.RegisterJSON("BrainRegions", paths.Regions, ""))

	// --- Phase 1: epidemiological exploration -------------------------
	// Filter by demographic criteria, compute aggregates to locate areas
	// of interest (paper §6).
	run(eng, "elderly patients in lausanne",
		`for { p <- Patients, p.age >= 70, p.city = "lausanne" } yield count p`)
	run(eng, "mean protein p3 among them",
		`for { p <- Patients, p.age >= 70, p.city = "lausanne" } yield avg p.p3`)
	run(eng, "cities with any high-BMI patient",
		`for { p <- Patients, p.bmi > 38.0 } yield set p.city`)

	// --- Phase 2: interactive analysis --------------------------------
	// Join patient data with genetics and the imaging products; results
	// feed a brain atlas or a downstream statistical tool.
	run(eng, "patients with risk genotype and large hippocampus",
		`for { p <- Patients, g <- Genetics, b <- BrainRegions,
		       p.id = g.id, g.id = b.id,
		       g.snp5 = 2, b.region = "hippocampus", b.volume > 3000.0 }
		 yield count 1`)
	run(eng, "their regions, reshaped for the atlas",
		`for { p <- Patients, g <- Genetics, b <- BrainRegions,
		       p.id = g.id, g.id = b.id, g.snp5 = 2, b.volume > 4500.0 }
		 yield bag (patient := p.id, region := b.region, vol := b.volume)`)

	// The same fields again: now served from the caches at loaded-store
	// speed — the effect behind Figure 5.
	t0 := time.Now()
	run(eng, "re-run (warm)",
		`for { p <- Patients, g <- Genetics, b <- BrainRegions,
		       p.id = g.id, g.id = b.id,
		       g.snp5 = 2, b.region = "hippocampus", b.volume > 3000.0 }
		 yield count 1`)
	fmt.Printf("warm re-run took %v\n\n", time.Since(t0).Round(time.Microsecond))

	st := eng.Stats()
	fmt.Println("engine state after the session:")
	fmt.Printf("  queries: %d (cache-served %d, raw-touch %d)\n",
		st.Queries, st.QueriesFromCache, st.QueriesTouchedRaw)
	fmt.Printf("  cache: %d entries, %d bytes; auxiliary structures: %d bytes\n",
		st.Cache.Entries, st.Cache.BytesUsed, st.AuxiliaryBytes)
	fmt.Println("\nno patient data was copied, moved, or transformed — the raw files are untouched.")
}

func run(eng *vida.Engine, label, query string) {
	t0 := time.Now()
	res, err := eng.Query(query)
	must(err)
	d := time.Since(t0).Round(time.Microsecond)
	rows := res.Rows()
	if len(rows) == 1 && rows[0].Kind() != "record" {
		fmt.Printf("%-46s = %s   (%v)\n", label, res, d)
		return
	}
	fmt.Printf("%-46s → %d rows (%v)\n", label, len(rows), d)
	for i, r := range rows {
		if i == 3 {
			fmt.Println("    ...")
			break
		}
		fmt.Println("   ", r)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
