// Example: query raw files through Go's standard database/sql, using
// the "vida" driver. A CSV lands in a temp directory, sql.Open points a
// virtual database at it, and QueryContext streams matching rows with
// bind parameters — no loading step, no schema migration, plain
// database/sql all the way. Run with: go run ./examples/sqldriver
package main

import (
	"context"
	"database/sql"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	_ "vida/sqldriver"
)

func main() {
	dir, err := os.MkdirTemp("", "vida-sqldriver")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The raw data: a plain CSV, exactly as some instrument or export
	// left it.
	path := filepath.Join(dir, "people.csv")
	var sb strings.Builder
	sb.WriteString("id,name,age\n")
	for i := 1; i <= 1000; i++ {
		fmt.Fprintf(&sb, "%d,person%d,%d\n", i, i, 18+i%60)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		log.Fatal(err)
	}

	// The DSN is the database: raw files plus their descriptions.
	db, err := sql.Open("vida",
		"csv:People="+path+"#Record(Att(id, int), Att(name, string), Att(age, int))")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ctx := context.Background()

	// Standard QueryContext with a bind parameter; rows stream off the
	// raw file through the engine's cursor.
	rows, err := db.QueryContext(ctx,
		"SELECT id, name, age FROM People WHERE age > $1", 74)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		var id, age int64
		var name string
		if err := rows.Scan(&id, &name, &age); err != nil {
			log.Fatal(err)
		}
		if n < 3 {
			fmt.Printf("  %d\t%s\t%d\n", id, name, age)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("people over 74: %d rows\n", n)

	// Prepared statements compile once and re-run with new constants.
	stmt, err := db.PrepareContext(ctx, "SELECT COUNT(*) FROM People WHERE age > ?")
	if err != nil {
		log.Fatal(err)
	}
	defer stmt.Close()
	for _, min := range []int{20, 50, 70} {
		var count int64
		if err := stmt.QueryRowContext(ctx, min).Scan(&count); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("count(age > %d) = %d\n", min, count)
	}

	// Sanity for the CI smoke test.
	var total int64
	if err := db.QueryRowContext(ctx, "SELECT COUNT(*) FROM People").Scan(&total); err != nil {
		log.Fatal(err)
	}
	if total != 1000 {
		log.Fatalf("expected 1000 rows, got %d", total)
	}
	fmt.Println("ok")
}
