// Banking: the paper's second motivating scenario (§1.1) — different
// functional domains (Trading, Risk, Settlement) interfacing with the
// same raw data without sharing a common system. Four formats coexist:
// trades in CSV, risk positions in JSON, reference rates in a binary
// spreadsheet, and a returns matrix in a binary array file. Each domain
// asks its own questions over the shared raw files; regulation-friendly,
// since the raw data never moves. Run with: go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"vida"
	"vida/internal/rawarr"
	"vida/internal/rawxls"
	"vida/internal/values"
)

func main() {
	dir, err := os.MkdirTemp("", "vida-banking")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	r := rand.New(rand.NewSource(99))

	// --- The raw data landscape ---------------------------------------
	desks := []string{"fx", "rates", "equity", "credit"}
	ccys := []string{"CHF", "EUR", "USD", "GBP"}

	// Trading domain: the trade blotter, CSV.
	trades := filepath.Join(dir, "trades.csv")
	blotter := "trade_id,desk,ccy,notional,price\n"
	for i := 0; i < 400; i++ {
		blotter += fmt.Sprintf("%d,%s,%s,%d,%.4f\n",
			i, desks[r.Intn(len(desks))], ccys[r.Intn(len(ccys))],
			(r.Intn(90)+10)*1000, 90+r.Float64()*20)
	}
	os.WriteFile(trades, []byte(blotter), 0o644)

	// Risk domain: position snapshots with nested limits, JSON.
	positions := filepath.Join(dir, "positions.json")
	posJSON := "["
	for i, d := range desks {
		if i > 0 {
			posJSON += ","
		}
		posJSON += fmt.Sprintf(
			`{"desk": "%s", "var95": %.1f, "limits": {"var": %d, "notional": %d}}`,
			d, 40+r.Float64()*80, 100, 50_000_000)
	}
	posJSON += "]"
	os.WriteFile(positions, []byte(posJSON), 0o644)

	// Settlement domain: reference FX rates, binary spreadsheet.
	rates := filepath.Join(dir, "rates.vxls")
	sheet := &rawxls.Sheet{
		ColNames: []string{"ccy", "to_chf"},
		ColTypes: []rawxls.ColType{rawxls.ColString, rawxls.ColFloat},
	}
	rateRows := [][]values.Value{
		{values.NewString("CHF"), values.NewFloat(1.00)},
		{values.NewString("EUR"), values.NewFloat(0.96)},
		{values.NewString("USD"), values.NewFloat(0.88)},
		{values.NewString("GBP"), values.NewFloat(1.12)},
	}
	must(rawxls.Write(rates, sheet, rateRows))

	// Quant domain: desk×day returns matrix, binary array file.
	returns := filepath.Join(dir, "returns.varr")
	days := 30
	must(rawarr.Write(returns, &rawarr.Header{
		Dims:       []int{len(desks), days},
		FieldNames: []string{"ret"},
		FieldTypes: []rawarr.FieldType{rawarr.FieldFloat},
	}, func(c int) ([]values.Value, error) {
		return []values.Value{values.NewFloat(r.NormFloat64() / 100)}, nil
	}))

	// --- One virtual database over all four ---------------------------
	eng := vida.New()
	must(eng.RegisterCSV("Trades", trades,
		"Record(Att(trade_id, int), Att(desk, string), Att(ccy, string), Att(notional, int), Att(price, float))", nil))
	must(eng.RegisterJSON("Positions", positions, ""))
	must(eng.RegisterXLS("Rates", rates, "Record(Att(ccy, string), Att(to_chf, float))"))
	must(eng.RegisterArray("Returns", returns,
		"Array(Dim(desk, int), Dim(day, int), Att(val, Record(Att(ret, float))))"))

	// Trading asks: notional per desk in CHF — CSV joined with the
	// settlement sheet.
	show(eng, "CHF notional, fx desk",
		`for { t <- Trades, fx <- Rates, t.ccy = fx.ccy, t.desk = "fx" }
		 yield sum t.notional * fx.to_chf`)

	// Risk asks: desks whose 95% VaR exceeds their limit — JSON only,
	// navigating the nested limits object.
	show(eng, "desks breaching VaR limit",
		`for { p <- Positions, p.var95 > p.limits.var }
		 yield set p.desk`)

	// Compliance asks, across domains: total CHF notional of desks in
	// breach — CSV ⋈ JSON ⋈ sheet in one query.
	show(eng, "breached desks' CHF notional",
		`for { p <- Positions, t <- Trades, fx <- Rates,
		       p.var95 > p.limits.var, t.desk = p.desk, t.ccy = fx.ccy }
		 yield sum t.notional * fx.to_chf`)

	// Quant asks: worst single-day return of desk 0 — the array file,
	// iterated as (desk, day, ret) cells.
	show(eng, "worst day, desk 0",
		`for { c <- Returns, c.desk = 0 } yield min c.ret`)

	// Settlement prefers SQL — same engine, same files.
	res, err := eng.QuerySQL(
		`SELECT t.ccy, COUNT(*) AS trades, SUM(t.notional) AS total
		 FROM Trades t GROUP BY t.ccy`)
	must(err)
	fmt.Println("per-currency blotter summary (SQL):")
	for _, row := range res.Rows() {
		fmt.Println("   ", row)
	}
}

func show(eng *vida.Engine, label, query string) {
	res, err := eng.Query(query)
	must(err)
	fmt.Printf("%-32s = %s\n", label, res)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
