package sqldriver_test

import (
	"database/sql"
	"fmt"
	"log"
	"os"
	"path/filepath"

	_ "vida/sqldriver"
)

// Example_dsn opens a virtual database over a raw CSV file through
// Go's standard database/sql: the DSN lists the files (one entry per
// source, `#` separating path from schema), and every pooled
// connection shares one engine — so the positional map and the typed
// columnar cache built by the first query serve all later ones.
func Example_dsn() {
	dir, err := os.MkdirTemp("", "vida-driver-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "people.csv")
	data := "id,name,age\n1,ada,36\n2,bob,41\n3,eve,29\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		log.Fatal(err)
	}

	dsn := "csv:People=" + path + "#Record(Att(id, int), Att(name, string), Att(age, int))"
	db, err := sql.Open("vida", dsn)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rows, err := db.Query(`SELECT name FROM People WHERE age > $1 ORDER BY age DESC`, 30)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var name string
		if err := rows.Scan(&name); err != nil {
			log.Fatal(err)
		}
		fmt.Println(name)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}

	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM People`).Scan(&n); err != nil {
		log.Fatal(err)
	}
	fmt.Println(n)
	// Output:
	// bob
	// ada
	// 3
}
