package sqldriver

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"vida"
)

// sourceSpec is one raw-file registration from the DSN.
type sourceSpec struct {
	kind   string // csv, json, array, xls
	name   string
	path   string
	schema string
}

// dsnConfig is the parsed DSN: the set of raw files the virtual
// database is made of, plus engine options.
type dsnConfig struct {
	sources     []sourceSpec
	lang        string // "sql" (default) or "mcl"
	cacheBudget int64
}

// parseDSN parses a data source name. A DSN is a semicolon-separated
// list of entries, mirroring the vidaserve registration flags:
//
//	csv:Name=path#schema         CSV file with a source-description schema
//	json:Name=path[#schema]      JSON file (schema optional, open schema)
//	array:Name=path#schema       binary array file
//	xls:Name=path#schema         binary spreadsheet file
//	catalog:path                 file with one entry per line (leading-#
//	                             comment lines and blank lines ignored)
//	lang=sql|mcl                 query language of this database
//	                             (default sql; mcl = monoid comprehensions)
//	cache_budget=bytes           data cache budget (0 = unlimited)
//
// Example:
//
//	sql.Open("vida", "csv:People=people.csv#Record(Att(id, int), Att(age, int))")
func parseDSN(dsn string) (*dsnConfig, error) {
	cfg := &dsnConfig{lang: "sql"}
	for _, entry := range strings.Split(dsn, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if err := cfg.addEntry(entry); err != nil {
			return nil, err
		}
	}
	if len(cfg.sources) == 0 {
		return nil, fmt.Errorf("sqldriver: DSN registers no sources (want csv:/json:/array:/xls:/catalog: entries)")
	}
	return cfg, nil
}

func (cfg *dsnConfig) addEntry(entry string) error {
	kind, rest, ok := strings.Cut(entry, ":")
	if ok {
		switch kind {
		case "csv", "json", "array", "xls":
			spec, err := parseSourceSpec(kind, rest)
			if err != nil {
				return err
			}
			cfg.sources = append(cfg.sources, spec)
			return nil
		case "catalog":
			return cfg.addCatalogFile(rest)
		}
	}
	// Option entries use key=value.
	key, val, ok := strings.Cut(entry, "=")
	if !ok {
		return fmt.Errorf("sqldriver: bad DSN entry %q", entry)
	}
	switch key {
	case "lang":
		if val != "sql" && val != "mcl" {
			return fmt.Errorf("sqldriver: lang must be sql or mcl, got %q", val)
		}
		cfg.lang = val
	case "cache_budget":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("sqldriver: bad cache_budget %q", val)
		}
		cfg.cacheBudget = n
	default:
		return fmt.Errorf("sqldriver: unknown DSN option %q", key)
	}
	return nil
}

// parseSourceSpec parses Name=path[#schema].
func parseSourceSpec(kind, rest string) (sourceSpec, error) {
	name, loc, ok := strings.Cut(rest, "=")
	if !ok || name == "" {
		return sourceSpec{}, fmt.Errorf("sqldriver: %s source %q: want Name=path[#schema]", kind, rest)
	}
	path, schema, _ := strings.Cut(loc, "#")
	if path == "" {
		return sourceSpec{}, fmt.Errorf("sqldriver: %s source %q: empty path", kind, rest)
	}
	if schema == "" && kind != "json" {
		return sourceSpec{}, fmt.Errorf("sqldriver: %s source %q needs a #schema", kind, rest)
	}
	return sourceSpec{kind: kind, name: name, path: path, schema: schema}, nil
}

// addCatalogFile reads registrations from a catalog file: one
// csv:/json:/array:/xls: entry per line, '#'-prefixed comment lines and
// blank lines ignored.
func (cfg *dsnConfig) addCatalogFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("sqldriver: catalog %s: %w", path, err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "catalog:") {
			return fmt.Errorf("sqldriver: catalog %s line %d: catalogs cannot nest", path, i+1)
		}
		if err := cfg.addEntry(line); err != nil {
			return fmt.Errorf("sqldriver: catalog %s line %d: %w", path, i+1, err)
		}
	}
	return nil
}

// buildEngine constructs and populates the engine this DSN describes.
func (cfg *dsnConfig) buildEngine() (*vida.Engine, error) {
	var opts []vida.Option
	if cfg.cacheBudget > 0 {
		opts = append(opts, vida.WithCacheBudget(cfg.cacheBudget))
	}
	eng := vida.New(opts...)
	for _, s := range cfg.sources {
		var err error
		switch s.kind {
		case "csv":
			err = eng.RegisterCSV(s.name, s.path, s.schema, nil)
		case "json":
			err = eng.RegisterJSON(s.name, s.path, s.schema)
		case "array":
			err = eng.RegisterArray(s.name, s.path, s.schema)
		case "xls":
			err = eng.RegisterXLS(s.name, s.path, s.schema)
		}
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("sqldriver: registering %s: %w", s.name, err)
		}
	}
	return eng, nil
}
