// Package sqldriver exposes the ViDa engine through Go's standard
// database/sql interface, registered under the driver name "vida". The
// DSN describes which raw files make up the virtual database (see
// parseDSN); queries are SQL by default and stream through the engine's
// cursor path, so large results arrive row-by-row with bounded memory:
//
//	db, err := sql.Open("vida",
//	    "csv:People=people.csv#Record(Att(id, int), Att(age, int))")
//	rows, err := db.QueryContext(ctx,
//	    "SELECT id FROM People WHERE age > $1", 40)
//
// Prepared statements map onto the engine's plan cache: preparing once
// and running with different bind parameters re-uses the compiled plan
// (the compile-once/run-many contract Stmt expects). The engine is
// read-only — Exec and transactions are not supported.
//
// One engine (with its caches and positional maps) backs all
// connections of one sql.DB; connections are stateless handles.
package sqldriver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"sync"
	"time"

	"vida"
	"vida/internal/core"
	"vida/internal/serve"
)

func init() {
	sql.Register("vida", &Driver{})
}

// Driver is the database/sql driver for ViDa engines.
type Driver struct{}

var (
	_ driver.Driver        = (*Driver)(nil)
	_ driver.DriverContext = (*Driver)(nil)
)

// Open implements driver.Driver. database/sql prefers OpenConnector, so
// this path only runs for code holding a raw *Driver.
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector implements driver.DriverContext: the DSN is parsed once
// and every connection of the pool shares one engine.
func (d *Driver) OpenConnector(dsn string) (driver.Connector, error) {
	cfg, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	return &Connector{drv: d, cfg: cfg}, nil
}

// Connector builds connections over one shared engine, created lazily
// on first Connect (file registration touches the filesystem).
type Connector struct {
	drv *Driver
	cfg *dsnConfig

	mu     sync.Mutex
	eng    *vida.Engine
	err    error
	closed bool
}

var _ io.Closer = (*Connector)(nil)

// engine lazily builds the shared engine, guarded against concurrent
// first connections and against a racing Close (which would otherwise
// miss — and leak — an engine built just after it looked).
func (c *Connector) engine() (*vida.Engine, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, driver.ErrBadConn
	}
	if c.eng == nil && c.err == nil {
		c.eng, c.err = c.cfg.buildEngine()
	}
	return c.eng, c.err
}

// Connect implements driver.Connector.
func (c *Connector) Connect(ctx context.Context) (driver.Conn, error) {
	eng, err := c.engine()
	if err != nil {
		return nil, err
	}
	return &Conn{eng: eng, lang: c.cfg.lang}, nil
}

// Driver implements driver.Connector.
func (c *Connector) Driver() driver.Driver { return c.drv }

// Close implements io.Closer: sql.DB.Close closes the connector, which
// drains and closes the shared engine (if one was ever built).
func (c *Connector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.eng != nil {
		return c.eng.Close()
	}
	return nil
}

// Engine returns the shared engine behind this connector, building it
// if needed. It allows driver users to reach ViDa-specific surface —
// Stats, Refresh, AttachCleaner — via sql.DB's connector. Returns nil
// after Close or when the DSN fails to build.
func (c *Connector) Engine() *vida.Engine {
	eng, _ := c.engine()
	return eng
}

// Conn is one pooled connection: a stateless handle on the shared
// engine.
type Conn struct {
	eng  *vida.Engine
	lang string
}

var (
	_ driver.Conn               = (*Conn)(nil)
	_ driver.QueryerContext     = (*Conn)(nil)
	_ driver.ExecerContext      = (*Conn)(nil)
	_ driver.ConnPrepareContext = (*Conn)(nil)
	_ driver.NamedValueChecker  = (*Conn)(nil)
	_ driver.Pinger             = (*Conn)(nil)
)

// mapErr folds engine errors into driver conventions: a closed engine
// means every connection of this pool is dead, and an admission shed
// (any serve.ErrBusy-shaped failure) is transient overload — both map
// to ErrBadConn so database/sql retries on another connection instead
// of surfacing a generic, terminal-looking error.
func mapErr(err error) error {
	if errors.Is(err, core.ErrClosed) || errors.Is(err, serve.ErrBusy) {
		return driver.ErrBadConn
	}
	return err
}

// translate maps the incoming query text to the engine's comprehension
// language when the DSN selected SQL (the default).
func (c *Conn) translate(query string) (string, error) {
	if c.lang != "sql" {
		return query, nil
	}
	return c.eng.TranslateSQL(query)
}

// Prepare implements driver.Conn.
func (c *Conn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext: the engine runs
// its full frontend (parse, type-check, normalize, translate, optimize)
// once; executions only bind parameters and run.
func (c *Conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	text, err := c.translate(query)
	if err != nil {
		return nil, err
	}
	p, err := c.eng.PrepareCtx(ctx, text)
	if err != nil {
		return nil, mapErr(err)
	}
	return &Stmt{conn: c, prepared: p}, nil
}

// QueryContext implements driver.QueryerContext (direct queries skip
// the Stmt round trip; the engine's plan cache still amortizes repeats).
func (c *Conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	text, err := c.translate(query)
	if err != nil {
		return nil, err
	}
	vargs, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	r, err := c.eng.QueryRowsCtx(ctx, text, vargs...)
	if err != nil {
		return nil, mapErr(err)
	}
	return &rows{inner: r}, nil
}

// ExecContext implements driver.ExecerContext. The engine is read-only:
// data lives in the raw files.
func (c *Conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	return nil, errors.New("sqldriver: the vida engine is read-only (no Exec); data changes happen in the raw files")
}

// Begin implements driver.Conn.
func (c *Conn) Begin() (driver.Tx, error) {
	return nil, errors.New("sqldriver: transactions are not supported (read-only engine)")
}

// Close implements driver.Conn. Connections are stateless; the engine
// is owned by the Connector.
func (c *Conn) Close() error { return nil }

// Ping implements driver.Pinger, reporting a closed engine as a dead
// connection.
func (c *Conn) Ping(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return mapErr(c.eng.Ping())
}

// CheckNamedValue implements driver.NamedValueChecker, admitting every
// Go type the engine's parameter converter understands (database/sql's
// default would reject plain int, for example).
func (c *Conn) CheckNamedValue(nv *driver.NamedValue) error {
	switch nv.Value.(type) {
	case nil, bool, string, []byte, time.Time, vida.Value,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64:
		return nil
	}
	v, err := driver.DefaultParameterConverter.ConvertValue(nv.Value)
	if err != nil {
		return err
	}
	nv.Value = v
	return nil
}

// convertArgs maps driver named values onto the engine's argument list:
// named values bind $name, the rest bind positionally in ordinal order.
func convertArgs(args []driver.NamedValue) ([]any, error) {
	out := make([]any, 0, len(args))
	for _, a := range args {
		if a.Name != "" {
			out = append(out, vida.Named(a.Name, a.Value))
			continue
		}
		out = append(out, a.Value)
	}
	return out, nil
}

// Stmt is a prepared statement: a handle on the engine's compiled plan.
type Stmt struct {
	conn     *Conn
	prepared *vida.Prepared
}

var (
	_ driver.Stmt              = (*Stmt)(nil)
	_ driver.StmtQueryContext  = (*Stmt)(nil)
	_ driver.NamedValueChecker = (*Stmt)(nil)
)

// Close implements driver.Stmt (plans are cached engine-side; nothing
// to release).
func (s *Stmt) Close() error { return nil }

// NumInput implements driver.Stmt. For purely positional parameters the
// exact count lets database/sql validate arguments up front; statements
// with named parameters return -1 (no placeholder count check).
func (s *Stmt) NumInput() int {
	names := s.prepared.Params()
	for i, n := range names {
		if n != strconv.Itoa(i+1) {
			return -1
		}
	}
	return len(names)
}

// Exec implements driver.Stmt (unsupported: read-only engine).
func (s *Stmt) Exec(args []driver.Value) (driver.Result, error) {
	return nil, errors.New("sqldriver: the vida engine is read-only (no Exec)")
}

// Query implements driver.Stmt (legacy positional-args path).
func (s *Stmt) Query(args []driver.Value) (driver.Rows, error) {
	named := make([]driver.NamedValue, len(args))
	for i, a := range args {
		named[i] = driver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return s.QueryContext(context.Background(), named)
}

// QueryContext implements driver.StmtQueryContext: bind parameters are
// substituted into a copy of the cached plan and the result streams
// through the engine's cursor.
func (s *Stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	vargs, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	r, err := s.prepared.RunRowsCtx(ctx, vargs...)
	if err != nil {
		return nil, mapErr(err)
	}
	return &rows{inner: r}, nil
}

// CheckNamedValue implements driver.NamedValueChecker for statement
// executions (database/sql consults the Stmt first).
func (s *Stmt) CheckNamedValue(nv *driver.NamedValue) error {
	return s.conn.CheckNamedValue(nv)
}

// rows adapts the engine's streaming cursor to driver.Rows. Each Next
// pulls one row from the bounded-channel stream; Close aborts the
// producers mid-scan.
type rows struct {
	inner *vida.Rows
	cols  []string
}

var (
	_ driver.Rows                           = (*rows)(nil)
	_ driver.RowsColumnTypeScanType         = (*rows)(nil)
	_ driver.RowsColumnTypeDatabaseTypeName = (*rows)(nil)
)

// Columns implements driver.Rows.
func (r *rows) Columns() []string {
	if r.cols == nil {
		r.cols = r.inner.Columns()
	}
	return r.cols
}

// Close implements driver.Rows.
func (r *rows) Close() error { return r.inner.Close() }

// ColumnTypeDatabaseTypeName implements the optional driver.Rows
// extension: BOOL, INT, FLOAT, STRING, or JSON (nested records and
// collections render as JSON text, see driverValue). Open-schema results
// with no declared type return "".
func (r *rows) ColumnTypeDatabaseTypeName(index int) string {
	return r.inner.ColumnTypeName(index)
}

// ColumnTypeScanType implements the optional driver.Rows extension,
// reporting the Go type driverValue produces for non-null values of the
// column. Columns with no declared type scan as any.
func (r *rows) ColumnTypeScanType(index int) reflect.Type {
	switch r.inner.ColumnTypeName(index) {
	case "BOOL":
		return reflect.TypeOf(false)
	case "INT":
		return reflect.TypeOf(int64(0))
	case "FLOAT":
		return reflect.TypeOf(float64(0))
	case "STRING", "JSON":
		return reflect.TypeOf("")
	}
	return reflect.TypeOf((*any)(nil)).Elem()
}

// Next implements driver.Rows. Record rows map one field per column
// (matched by name, so heterogeneous open-schema rows read as null for
// columns they lack); scalar rows fill the single "value" column.
func (r *rows) Next(dest []driver.Value) error {
	if !r.inner.Next() {
		if err := r.inner.Err(); err != nil {
			return mapErr(err)
		}
		return io.EOF
	}
	cols := r.Columns()
	if len(dest) < len(cols) {
		return fmt.Errorf("sqldriver: %d destinations for %d columns", len(dest), len(cols))
	}
	row := r.inner.Value()
	if row.Kind() == "record" && !(len(cols) == 1 && cols[0] == "value") {
		for i, name := range cols {
			dest[i] = driverValue(row.Field(name))
		}
		return nil
	}
	dest[0] = driverValue(row)
	return nil
}

// driverValue converts an engine value to a driver.Value: scalars map
// directly, nested records and collections render as JSON text.
func driverValue(v vida.Value) driver.Value {
	switch v.Kind() {
	case "null":
		return nil
	case "bool":
		return v.Bool()
	case "int":
		return v.Int()
	case "float":
		return v.Float()
	case "string":
		return v.Str()
	default:
		return string(v.AppendJSON(nil))
	}
}
