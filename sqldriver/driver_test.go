package sqldriver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vida/internal/core"
	"vida/internal/serve"
)

// writePeopleCSV writes an n-row People file and returns its DSN entry.
func writePeopleCSV(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "people.csv")
	var sb strings.Builder
	sb.WriteString("id,name,age\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&sb, "%d,p%d,%d\n", i, i, 20+i%60)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return "csv:People=" + path + "#Record(Att(id, int), Att(name, string), Att(age, int))"
}

func openDB(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open("vida", dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestQueryContextWithArgs(t *testing.T) {
	db := openDB(t, writePeopleCSV(t, 100))
	rows, err := db.QueryContext(context.Background(),
		"SELECT id, name FROM People WHERE age > $1", 75)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "id" || cols[1] != "name" {
		t.Fatalf("columns = %v", cols)
	}
	count := 0
	for rows.Next() {
		var id int64
		var name string
		if err := rows.Scan(&id, &name); err != nil {
			t.Fatal(err)
		}
		if name != fmt.Sprintf("p%d", id) {
			t.Fatalf("row mismatch: id=%d name=%s", id, name)
		}
		count++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	// age = 20 + i%60 > 75 → i%60 in 56..59: 4 ids per 60, ids ≤ 100.
	want := 0
	for i := 1; i <= 100; i++ {
		if 20+i%60 > 75 {
			want++
		}
	}
	if count != want {
		t.Fatalf("rows = %d, want %d", count, want)
	}
}

func TestPreparedStatementReuse(t *testing.T) {
	db := openDB(t, writePeopleCSV(t, 50))
	stmt, err := db.Prepare("SELECT COUNT(*) FROM People WHERE age > ?")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for _, tc := range []struct{ arg, want int64 }{{0, 50}, {200, 0}} {
		var got int64
		if err := stmt.QueryRow(tc.arg).Scan(&got); err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("count(age > %d) = %d, want %d", tc.arg, got, tc.want)
		}
	}
}

func TestNamedParameters(t *testing.T) {
	db := openDB(t, writePeopleCSV(t, 30)+";lang=mcl")
	var got int64
	err := db.QueryRow(
		"for { p <- People, p.age > $min } yield sum 1",
		sql.Named("min", 0),
	).Scan(&got)
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("count = %d, want 30", got)
	}
}

func TestErrBadConnOnClosedEngine(t *testing.T) {
	connector, err := (&Driver{}).OpenConnector(writePeopleCSV(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	db := sql.OpenDB(connector)
	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}
	// Close the engine out from under the pool; driver calls must now
	// surface driver.ErrBadConn so database/sql retires the connections.
	if err := connector.(*Connector).Engine().Close(); err != nil {
		t.Fatal(err)
	}
	conn, err := connector.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.(driver.QueryerContext).QueryContext(context.Background(),
		"SELECT id FROM People", nil)
	if !errors.Is(err, driver.ErrBadConn) {
		t.Fatalf("err = %v, want driver.ErrBadConn", err)
	}
	db.Close()
}

func TestExecAndTxRejected(t *testing.T) {
	db := openDB(t, writePeopleCSV(t, 5))
	if _, err := db.Exec("SELECT id FROM People"); err == nil {
		t.Fatal("Exec should fail on a read-only engine")
	}
	if _, err := db.Begin(); err == nil {
		t.Fatal("Begin should fail")
	}
}

func TestCatalogDSN(t *testing.T) {
	entry := writePeopleCSV(t, 12)
	catPath := filepath.Join(t.TempDir(), "catalog.txt")
	content := "# the people database\n\n" + entry + "\n"
	if err := os.WriteFile(catPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	db := openDB(t, "catalog:"+catPath)
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM People").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("count = %d, want 12", n)
	}
}

func TestBadDSN(t *testing.T) {
	for _, dsn := range []string{"", "lang=sql", "csv:NoPath", "bogus:X=y#z"} {
		if _, err := (&Driver{}).OpenConnector(dsn); err == nil {
			t.Fatalf("DSN %q should be rejected", dsn)
		}
	}
}

// TestOrderByLimitThroughDriver covers the ranked-query path through
// database/sql: ordered rows arrive in order, LIMIT binds as a
// parameter, and prepared statements serve different bounds.
func TestOrderByLimitThroughDriver(t *testing.T) {
	db := openDB(t, writePeopleCSV(t, 5000)) // lang defaults to sql
	rows, err := db.QueryContext(context.Background(),
		"SELECT id, age FROM People ORDER BY age DESC, id LIMIT $1 OFFSET $2", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var ids []int64
	for rows.Next() {
		var id, age int64
		if err := rows.Scan(&id, &age); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	// age 79 at ids 59,119,179,...; offset 1 skips id 59.
	if fmt.Sprint(ids) != fmt.Sprint([]int64{119, 179, 239}) {
		t.Fatalf("ordered ids = %v", ids)
	}

	stmt, err := db.Prepare("SELECT id FROM People ORDER BY id LIMIT $1")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for _, n := range []int{1, 4} {
		rs, err := stmt.Query(n)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for rs.Next() {
			var id int64
			if err := rs.Scan(&id); err != nil {
				t.Fatal(err)
			}
			if id != int64(got+1) {
				t.Fatalf("prepared limit %d: row %d = %d", n, got, id)
			}
			got++
		}
		rs.Close()
		if got != n {
			t.Fatalf("prepared limit %d returned %d rows", n, got)
		}
	}
}

// TestMapErrRetryable: admission sheds and closed engines are reported
// as ErrBadConn so database/sql retries on another connection; ordinary
// query failures pass through untouched.
func TestMapErrRetryable(t *testing.T) {
	busy := &serve.BusyError{RetryAfter: time.Second, Reason: "admission queue full"}
	if got := mapErr(busy); !errors.Is(got, driver.ErrBadConn) {
		t.Fatalf("mapErr(BusyError) = %v, want driver.ErrBadConn", got)
	}
	if got := mapErr(fmt.Errorf("wrapped: %w", serve.ErrBusy)); !errors.Is(got, driver.ErrBadConn) {
		t.Fatalf("mapErr(wrapped ErrBusy) = %v, want driver.ErrBadConn", got)
	}
	if got := mapErr(core.ErrClosed); !errors.Is(got, driver.ErrBadConn) {
		t.Fatalf("mapErr(ErrClosed) = %v, want driver.ErrBadConn", got)
	}
	plain := errors.New("syntax error")
	if got := mapErr(plain); got != plain {
		t.Fatalf("mapErr(plain) = %v, want the error unchanged", got)
	}
}

// TestColumnTypes checks the optional driver.Rows column-type metadata
// surfaced through database/sql's ColumnTypes: database type names and
// scan types for plain projections and for grouped aggregates.
func TestColumnTypes(t *testing.T) {
	db := openDB(t, writePeopleCSV(t, 50))

	check := func(t *testing.T, query string, wantNames, wantDB []string, wantScan []reflect.Type) {
		t.Helper()
		rows, err := db.Query(query)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		cts, err := rows.ColumnTypes()
		if err != nil {
			t.Fatal(err)
		}
		if len(cts) != len(wantNames) {
			t.Fatalf("got %d columns, want %d", len(cts), len(wantNames))
		}
		for i, ct := range cts {
			if ct.Name() != wantNames[i] {
				t.Errorf("column %d name = %q, want %q", i, ct.Name(), wantNames[i])
			}
			if ct.DatabaseTypeName() != wantDB[i] {
				t.Errorf("column %q type name = %q, want %q", ct.Name(), ct.DatabaseTypeName(), wantDB[i])
			}
			if ct.ScanType() != wantScan[i] {
				t.Errorf("column %q scan type = %v, want %v", ct.Name(), ct.ScanType(), wantScan[i])
			}
		}
	}

	t.Run("projection", func(t *testing.T) {
		check(t, "SELECT id, name, age FROM People",
			[]string{"id", "name", "age"},
			[]string{"INT", "STRING", "INT"},
			[]reflect.Type{reflect.TypeOf(int64(0)), reflect.TypeOf(""), reflect.TypeOf(int64(0))})
	})

	t.Run("grouped aggregates", func(t *testing.T) {
		check(t, "SELECT age, COUNT(*) AS n, AVG(id) AS a FROM People GROUP BY age",
			[]string{"age", "n", "a"},
			[]string{"INT", "INT", "FLOAT"},
			[]reflect.Type{reflect.TypeOf(int64(0)), reflect.TypeOf(int64(0)), reflect.TypeOf(float64(0))})
	})
}

// TestGroupByThroughDriver runs a grouped aggregate with HAVING through
// database/sql and checks the groups against values computed directly
// from the generated data.
func TestGroupByThroughDriver(t *testing.T) {
	db := openDB(t, writePeopleCSV(t, 100))
	rows, err := db.Query(`SELECT age, COUNT(*) AS n FROM People
	    GROUP BY age HAVING COUNT(*) > 1 ORDER BY age`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	// age = 20 + i%60 for i in 1..100: residues 1..40 occur twice.
	want := map[int64]int64{}
	for i := 1; i <= 100; i++ {
		want[int64(20+i%60)]++
	}
	var prev int64 = -1
	got := 0
	for rows.Next() {
		var age, n int64
		if err := rows.Scan(&age, &n); err != nil {
			t.Fatal(err)
		}
		if age <= prev {
			t.Fatalf("groups not ordered: %d after %d", age, prev)
		}
		prev = age
		if n <= 1 {
			t.Fatalf("HAVING leak: age %d has count %d", age, n)
		}
		if want[age] != n {
			t.Fatalf("age %d count = %d, want %d", age, n, want[age])
		}
		got++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	wantGroups := 0
	for _, n := range want {
		if n > 1 {
			wantGroups++
		}
	}
	if got != wantGroups {
		t.Fatalf("driver returned %d groups, want %d", got, wantGroups)
	}
}
