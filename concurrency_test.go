// Concurrency stress tests for the query service work: many goroutines
// querying one engine — mixed cold and warm, CSV and JSON, with Refresh
// churn racing the scans — must observe exactly the answers a serial
// engine produces, and cancellation must abort cold scans mid-file.
// These run under -race in CI.
package vida_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"vida"
	"vida/internal/workload"
)

// stressQueries covers both CSV sources, the JSON source and a join.
var stressQueries = []string{
	"for { p <- Patients, p.age > 40 } yield count p",
	"for { p <- Patients } yield sum p.age",
	"for { p <- Patients, p.gender = \"F\" } yield count p",
	"for { g <- Genetics, g.snp0 > 0 } yield count g",
	"for { g <- Genetics } yield max g.snp1",
	"for { r <- BrainRegions } yield count r",
	"for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 55 } yield count p",
}

func stressEngine(t testing.TB, dir string) (*vida.Engine, workload.Paths) {
	t.Helper()
	sc := workload.Scale{
		PatientsRows:   1200,
		PatientsCols:   12,
		GeneticsRows:   900,
		GeneticsCols:   10,
		RegionsObjects: 200,
	}
	paths, err := workload.GenerateAll(dir, sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng := vida.New()
	if err := eng.RegisterCSV("Patients", paths.Patients, workload.PatientsSchema(sc), nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterCSV("Genetics", paths.Genetics, workload.GeneticsSchema(sc), nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterJSON("BrainRegions", paths.Regions, ""); err != nil {
		t.Fatal(err)
	}
	return eng, *paths
}

// TestConcurrentQueriesMatchSerial runs many concurrent Query calls —
// first touches racing each other, warm rescans, and a goroutine
// rewriting a source file (same bytes, new mtime) plus calling Refresh
// so invalidation churns underneath — and asserts every result equals
// the serial engine's.
func TestConcurrentQueriesMatchSerial(t *testing.T) {
	dir := t.TempDir()
	eng, paths := stressEngine(t, dir)

	serial, _ := stressEngine(t, t.TempDir())
	expected := make(map[string]string, len(stressQueries))
	for _, q := range stressQueries {
		res, err := serial.Query(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		expected[q] = res.String()
	}

	// Refresh churn: atomically replace Patients with identical content
	// (rename keeps readers from ever seeing a partial file) so caches,
	// positional maps and plans invalidate while answers stay fixed.
	content, err := os.ReadFile(paths.Patients)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tmp := filepath.Join(dir, fmt.Sprintf("patients.tmp.%d", i))
			if err := os.WriteFile(tmp, content, 0o644); err != nil {
				t.Error(err)
				return
			}
			// Nudge mtime forward: coarse filesystem clocks could otherwise
			// make the rewrite invisible to Refresh.
			now := time.Now().Add(time.Duration(i+1) * 10 * time.Millisecond)
			os.Chtimes(tmp, now, now)
			if err := os.Rename(tmp, paths.Patients); err != nil {
				t.Error(err)
				return
			}
			if err := eng.Refresh(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const goroutines = 12
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range stressQueries {
					q := stressQueries[(i+g+r)%len(stressQueries)]
					res, err := eng.Query(q)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: %s: %w", g, q, err)
						return
					}
					if got := res.String(); got != expected[q] {
						errs <- fmt.Errorf("goroutine %d: %s: got %s, want %s", g, q, got, expected[q])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCancelAbortsColdScanMidFile cancels a query while its cold
// first-touch scan of a large CSV is in flight and asserts the query
// returns context.Canceled (not a completed result), then that the
// engine still answers normally.
func TestCancelAbortsColdScanMidFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.csv")
	var sb strings.Builder
	sb.WriteString("id,age\n")
	for i := 0; i < 300_000; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i%97)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := vida.New()
	if err := eng.RegisterCSV("Big", path, "Record(Att(id, int), Att(age, int))", nil); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel as soon as the raw scan is counted as started.
	go func() {
		for eng.Stats().RawScans == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		cancel()
	}()
	_, err := eng.QueryCtx(ctx, "for { b <- Big, b.age > 10 } yield count b")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The engine survives: the same query completes when allowed to.
	res, err := eng.Query("for { b <- Big } yield count b")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value().Int() != 300_000 {
		t.Fatalf("count = %d, want 300000", res.Value().Int())
	}
}

// TestQueryDeadlineExceeded runs a cold scan under an already-tight
// deadline and expects context.DeadlineExceeded.
func TestQueryDeadlineExceeded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.csv")
	var sb strings.Builder
	sb.WriteString("id,age\n")
	for i := 0; i < 300_000; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i%97)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := vida.New()
	if err := eng.RegisterCSV("Big", path, "Record(Att(id, int), Att(age, int))", nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	if _, err := eng.QueryCtx(ctx, "for { b <- Big } yield count b"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestEngineCloseDrains verifies Close waits for in-flight queries and
// rejects later ones.
func TestEngineCloseDrains(t *testing.T) {
	eng, _ := stressEngine(t, t.TempDir())
	// Warm one query, then close mid-stream of a fresh engine use.
	if _, err := eng.Query("for { p <- Patients } yield count p"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query("for { p <- Patients } yield count p"); err == nil {
		t.Fatal("query after Close succeeded")
	}
}

// TestPreparedConcurrentRuns executes one Prepared statement from many
// goroutines simultaneously.
func TestPreparedConcurrentRuns(t *testing.T) {
	eng, _ := stressEngine(t, t.TempDir())
	p, err := eng.Prepare("for { p <- Patients, p.age > 40 } yield count p")
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := p.Run()
				if err != nil {
					errs <- err
					return
				}
				if res.String() != want.String() {
					errs <- fmt.Errorf("got %s, want %s", res.String(), want.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
