package vida

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// groupRow renders one grouped-result record in a canonical comparable
// form, so results from the buffered and cursor APIs (and the three
// executors) compare structurally.
func groupRow(v Value) string {
	fields := v.Fields()
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = fmt.Sprintf("%s=%s", f.Name, f.Val.String())
	}
	return strings.Join(parts, ",")
}

// collectRows drains a cursor into canonical row strings.
func collectRows(t *testing.T, rows *Rows) []string {
	t.Helper()
	defer rows.Close()
	var out []string
	for rows.Next() {
		out = append(out, groupRow(rows.Value()))
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGroupByAcrossAPIs runs the same GROUP BY + HAVING query through
// every public surface — buffered QuerySQL, cursor QuerySQLRows,
// translate-then-Query, and translate-then-QueryRows — under all three
// executors, and checks every combination produces the same groups.
func TestGroupByAcrossAPIs(t *testing.T) {
	const sql = `SELECT e.deptNo AS d, COUNT(*) AS n, SUM(e.salary) AS total
	    FROM Employees e GROUP BY e.deptNo HAVING SUM(e.salary) > 100 ORDER BY d`
	want := []string{"d=10,n=2,total=180", "d=20,n=1,total=120"}

	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"jit", nil},
		{"static", []Option{WithStaticExecutor()}},
		{"reference", []Option{WithReferenceExecutor()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := setup(t, tc.opts...)

			res, err := e.QuerySQL(sql)
			if err != nil {
				t.Fatal(err)
			}
			var buffered []string
			for _, row := range res.Rows() {
				buffered = append(buffered, groupRow(row))
			}
			if got := strings.Join(buffered, "; "); got != strings.Join(want, "; ") {
				t.Fatalf("QuerySQL groups = %q, want %q", got, strings.Join(want, "; "))
			}

			rows, err := e.QuerySQLRows(sql)
			if err != nil {
				t.Fatal(err)
			}
			if got := collectRows(t, rows); strings.Join(got, "; ") != strings.Join(want, "; ") {
				t.Fatalf("QuerySQLRows groups = %q", strings.Join(got, "; "))
			}

			comp, err := e.TranslateSQL(sql)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := e.Query(comp)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Value().Equal(res2.Value()) {
				t.Fatalf("Query(translated) = %s, QuerySQL = %s", res2, res)
			}

			rows2, err := e.QueryRows(comp)
			if err != nil {
				t.Fatal(err)
			}
			if got := collectRows(t, rows2); strings.Join(got, "; ") != strings.Join(want, "; ") {
				t.Fatalf("QueryRows groups = %q", strings.Join(got, "; "))
			}
		})
	}
}

// TestGroupByEmptyAndSingleGroup checks grouped-query edge shapes stay
// consistent across executors: a predicate that filters every row yields
// zero groups, and a constant-true HAVING over one department yields
// exactly one.
func TestGroupByEmptyAndSingleGroup(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"jit", nil},
		{"static", []Option{WithStaticExecutor()}},
		{"reference", []Option{WithReferenceExecutor()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := setup(t, tc.opts...)

			res, err := e.QuerySQL(`SELECT e.deptNo, COUNT(*) AS n FROM Employees e
			    WHERE e.salary > 1000 GROUP BY e.deptNo`)
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() != 0 {
				t.Fatalf("empty input produced %d groups: %s", res.Len(), res)
			}

			res, err = e.QuerySQL(`SELECT e.deptNo, AVG(e.salary) AS a FROM Employees e
			    WHERE e.deptNo = 10 GROUP BY e.deptNo`)
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() != 1 {
				t.Fatalf("single-group query produced %d groups: %s", res.Len(), res)
			}
			row := res.Rows()[0]
			if row.Field("deptNo").Int() != 10 || row.Field("a").Float() != 90 {
				t.Fatalf("single group = %s", res)
			}
		})
	}
}

// TestGroupByUnorderedDeterministic checks that an unordered grouped
// query still emits groups in a deterministic (first-occurrence) order,
// identically across the buffered and streaming surfaces.
func TestGroupByUnorderedDeterministic(t *testing.T) {
	e := setup(t)
	const sql = `SELECT e.deptNo, COUNT(*) AS n FROM Employees e GROUP BY e.deptNo`
	res, err := e.QuerySQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	var buffered []string
	for _, row := range res.Rows() {
		buffered = append(buffered, groupRow(row))
	}
	sorted := append([]string(nil), buffered...)
	sort.Strings(sorted)
	for i := 0; i < 5; i++ {
		rows, err := e.QuerySQLRows(sql)
		if err != nil {
			t.Fatal(err)
		}
		got := collectRows(t, rows)
		gotSorted := append([]string(nil), got...)
		sort.Strings(gotSorted)
		if strings.Join(gotSorted, ";") != strings.Join(sorted, ";") {
			t.Fatalf("run %d group multiset = %v, want %v", i, got, buffered)
		}
		if strings.Join(got, ";") != strings.Join(buffered, ";") {
			t.Fatalf("run %d group order = %v, want %v", i, got, buffered)
		}
	}
}
