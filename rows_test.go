package vida

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// setupBig writes an n-row People CSV and registers it as "People".
func setupBig(t testing.TB, n int) *Engine {
	return setupBigOpts(t, n)
}

// setupBigOpts is setupBig with engine options (scheduler, executor).
func setupBigOpts(t testing.TB, n int, opts ...Option) *Engine {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "people.csv")
	var sb strings.Builder
	sb.WriteString("id,name,age\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&sb, "%d,p%d,%d\n", i, i, 20+i%60)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(opts...)
	err := e.RegisterCSV("People", path,
		"Record(Att(id, int), Att(name, string), Att(age, int))", nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQueryRowsMatchesQuery(t *testing.T) {
	e := setupBig(t, 20000) // above the parallel threshold
	const q = `for { p <- People, p.age > 50 } yield bag (id := p.id, age := p.age)`
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.QueryRows(q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	seen := map[int64]int64{}
	count := 0
	for rows.Next() {
		var id, age int64
		if err := rows.Scan(&id, &age); err != nil {
			t.Fatal(err)
		}
		seen[id] = age
		count++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if count != res.Len() {
		t.Fatalf("cursor rows = %d, Query rows = %d", count, res.Len())
	}
	for _, r := range res.Rows() {
		if seen[r.Field("id").Int()] != r.Field("age").Int() {
			t.Fatalf("row %s missing from cursor", r)
		}
	}
}

func TestQueryRowsColumns(t *testing.T) {
	e := setupBig(t, 10)
	rows, err := e.QuerySQLRows("SELECT id, name FROM People WHERE age > $1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols := rows.Columns()
	if len(cols) != 2 || cols[0] != "id" || cols[1] != "name" {
		t.Fatalf("columns = %v", cols)
	}
	// Columns peeked the first row; Next must still see all of them.
	n := 0
	for rows.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("rows after Columns = %d, want 10", n)
	}
}

func TestQueryRowsScalarResult(t *testing.T) {
	e := setupBig(t, 25)
	rows, err := e.QueryRows(`for { p <- People } yield count p`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 1 || cols[0] != "value" {
		t.Fatalf("columns = %v", cols)
	}
	if !rows.Next() {
		t.Fatal("expected one row")
	}
	var n int64
	if err := rows.Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("count = %d", n)
	}
	if rows.Next() {
		t.Fatal("scalar result must have exactly one row")
	}
}

func TestBindParameters(t *testing.T) {
	e := setupBig(t, 100)
	// Named parameter in the comprehension language.
	res, err := e.Query(`for { p <- People, p.age > $min } yield sum 1`, Named("min", 80))
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Query(`for { p <- People, p.age > 80 } yield sum 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value().Int() != want.Value().Int() {
		t.Fatalf("param result %s != literal result %s", res, want)
	}
	// Positional parameters through SQL ($1 and ?).
	for _, q := range []string{
		"SELECT COUNT(*) FROM People WHERE age > $1",
		"SELECT COUNT(*) FROM People WHERE age > ?",
	} {
		res, err := e.QuerySQL(q, 80)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if res.Value().Int() != want.Value().Int() {
			t.Fatalf("%s = %s, want %s", q, res, want)
		}
	}
	// The plan cache keys on the parameterized text: same shape, new
	// constant, no frontend re-run, different answer.
	p, err := e.Prepare(`for { p <- People, p.age > $min } yield sum 1`)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.Run(Named("min", 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value().Int() != 100 {
		t.Fatalf("min=0 count = %s, want 100", r1)
	}
	r2, err := p.Run(Named("min", 200))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Value().Int() != 0 {
		t.Fatalf("min=200 count = %s, want 0", r2)
	}
}

func TestBindParameterValidation(t *testing.T) {
	e := setupBig(t, 5)
	if _, err := e.Query(`for { p <- People, p.age > $min } yield sum 1`); err == nil {
		t.Fatal("missing parameter should fail")
	}
	if _, err := e.Query(`for { p <- People } yield sum 1`, Named("bogus", 1)); err == nil {
		t.Fatal("undeclared parameter should fail")
	}
	p, err := e.Prepare(`for { p <- People, p.age > $min, p.id < $max } yield sum 1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Params(); len(got) != 2 || got[0] != "min" || got[1] != "max" {
		t.Fatalf("Params() = %v", got)
	}
}

func TestSetMonoidStreamingDedups(t *testing.T) {
	e := setupBig(t, 30000)
	// age has 60 distinct values; the streaming path must dedup across
	// morsel-parallel producers exactly like the collect path.
	rows, err := e.QueryRows(`for { p <- People } yield set p.age`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	distinct := map[int64]bool{}
	n := 0
	for rows.Next() {
		var age int64
		if err := rows.Scan(&age); err != nil {
			t.Fatal(err)
		}
		if distinct[age] {
			t.Fatalf("duplicate %d in set stream", age)
		}
		distinct[age] = true
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("distinct ages = %d, want 60", n)
	}
}

// TestCursorCancelMidStreamCold streams a cold 300k-row CSV, abandons
// the cursor after a few rows, and verifies the machinery unwinds: no
// goroutine leak, engine close-gate released (Close returns), scheduler
// still serves queries.
func TestCursorCancelMidStreamCold(t *testing.T) {
	e := setupBig(t, 300000)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := e.QueryRowsCtx(ctx, `for { p <- People } yield bag (id := p.id, name := p.name, age := p.age)`)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for rows.Next() {
		got++
		if got >= 100 {
			break
		}
	}
	if got < 100 {
		t.Fatalf("streamed only %d rows before cancel: %v", got, rows.Err())
	}
	cancel()
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// The producer goroutine and its morsel workers must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines: %d before stream, %d after close (leak)", before, n)
	}

	// Pool slots are free again: a fresh query completes promptly.
	res, err := e.Query(`for { p <- People, p.age > 50 } yield count p`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value().Int() == 0 {
		t.Fatal("follow-up query returned nothing")
	}
	// The close gate is not pinned by the dead cursor.
	done := make(chan error, 1)
	go func() { done <- e.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Engine.Close blocked: abandoned cursor still holds a query slot")
	}
}

func TestCursorCloseWithoutCancel(t *testing.T) {
	e := setupBig(t, 300000)
	rows, err := e.QueryRows(`for { p <- People } yield bag p.id`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after clean Close = %v, want nil", err)
	}
	if rows.Next() {
		t.Fatal("Next after Close must be false")
	}
}

func TestScanDestinations(t *testing.T) {
	e := setupBig(t, 3)
	rows, err := e.QueryRows(`for { p <- People, p.id = 1 } yield bag (id := p.id, name := p.name)`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	var u8 uint8
	var u16 uint16
	var u32 uint32
	var s string
	for _, dst := range []any{&u8, &u16, &u32} {
		if err := rows.Scan(dst, &s); err != nil {
			t.Fatalf("Scan into %T: %v", dst, err)
		}
	}
	if u8 != 1 || u16 != 1 || u32 != 1 || s != "p1" {
		t.Fatalf("scanned %d/%d/%d/%q", u8, u16, u32, s)
	}
}

func TestResultRowsMemoized(t *testing.T) {
	e := setupBig(t, 100)
	res, err := e.Query(`for { p <- People } yield bag p.id`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Rows(), res.Rows()
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("len = %d/%d", len(a), len(b))
	}
	if &a[0] != &b[0] {
		t.Fatal("Rows() rebuilt the facade; conversion should be memoized")
	}
}

// BenchmarkStreamLargeResult measures time-to-first-row through the
// cursor against full materialization of the same 200k-row result: the
// streaming path should reach its first row in a small fraction of the
// materialization time.
func BenchmarkStreamLargeResult(b *testing.B) {
	e := setupBig(b, 200000)
	const q = `for { p <- People } yield bag (id := p.id, name := p.name, age := p.age)`
	if _, err := e.Query(q); err != nil { // warm the caches and posmap
		b.Fatal(err)
	}
	b.Run("first-row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := e.QueryRows(q)
			if err != nil {
				b.Fatal(err)
			}
			if !rows.Next() {
				b.Fatal("no rows")
			}
			rows.Close()
		}
	})
	b.Run("materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := e.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() != 200000 {
				b.Fatal("short result")
			}
		}
	})
	b.Run("stream-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := e.QueryRows(q)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for rows.Next() {
				n++
			}
			rows.Close()
			if n != 200000 {
				b.Fatalf("streamed %d rows", n)
			}
		}
	})
}
