package vida

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func setup(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "emps.csv")
	csv := "id,name,deptNo,salary\n1,ada,10,100\n2,bob,10,80\n3,eve,20,120\n4,dan,30,90\n"
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "depts.json")
	j := `[{"id": 10, "deptName": "HR"}, {"id": 20, "deptName": "Eng"}, {"id": 30, "deptName": "Ops"}]`
	if err := os.WriteFile(jsonPath, []byte(j), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(opts...)
	err := e.RegisterCSV("Employees", csvPath,
		"Record(Att(id, int), Att(name, string), Att(deptNo, int), Att(salary, float))", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterJSON("Departments", jsonPath, ""); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQuickstartFlow(t *testing.T) {
	e := setup(t)
	res, err := e.Query(`for { e <- Employees, d <- Departments,
	        e.deptNo = d.id, d.deptName = "HR"} yield sum 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value().Int() != 2 {
		t.Fatalf("HR count = %s", res)
	}
}

func TestQuerySQLMatchesComprehension(t *testing.T) {
	e := setup(t)
	sqlRes, err := e.QuerySQL(`SELECT COUNT(e.id)
	    FROM Employees e JOIN Departments d ON (e.deptNo = d.id)
	    WHERE d.deptName = 'HR'`)
	if err != nil {
		t.Fatal(err)
	}
	compRes, err := e.Query(`for { e <- Employees, d <- Departments,
	        e.deptNo = d.id, d.deptName = "HR"} yield sum 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !sqlRes.Value().Equal(compRes.Value()) {
		t.Fatalf("SQL %s != comprehension %s", sqlRes, compRes)
	}
}

func TestTranslateSQL(t *testing.T) {
	e := setup(t)
	text, err := e.TranslateSQL(`SELECT e.name FROM Employees e WHERE e.salary > 90`)
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("empty translation")
	}
	res, err := e.Query(text)
	if err != nil {
		t.Fatalf("translated query failed: %v\n%s", err, text)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestResultRows(t *testing.T) {
	e := setup(t)
	res, err := e.Query(`for { e <- Employees, e.salary >= 100 } yield bag (n := e.name, s := e.salary)`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r.Field("n").IsNull() || r.Field("s").Float() < 100 {
			t.Fatalf("row = %s", r)
		}
		if len(r.Fields()) != 2 {
			t.Fatalf("fields = %v", r.Fields())
		}
	}
	// Scalar results present as a single row.
	res2, _ := e.Query(`for { e <- Employees } yield count 1`)
	if res2.Len() != 1 || res2.Rows()[0].Int() != 4 {
		t.Fatalf("scalar rows = %v", res2.Rows())
	}
}

func TestValueFacade(t *testing.T) {
	v := NewRecord(
		Field{Name: "a", Val: NewInt(1)},
		Field{Name: "b", Val: NewList(NewString("x"), NewBool(true), NewFloat(2.5))},
	)
	if v.Kind() != "record" || v.Len() != 2 {
		t.Fatalf("record facade: %s", v)
	}
	b := v.Field("b")
	if !b.IsCollection() || b.Len() != 3 {
		t.Fatalf("list facade: %s", b)
	}
	if b.Elems()[0].Str() != "x" || !b.Elems()[1].Bool() || b.Elems()[2].Float() != 2.5 {
		t.Fatalf("elems: %s", b)
	}
	if !Null.IsNull() || v.Field("zz").Kind() != "null" {
		t.Fatal("null facade broken")
	}
	if !v.Equal(v) {
		t.Fatal("Equal broken")
	}
}

func TestRegisterValues(t *testing.T) {
	e := New()
	rows := []Value{
		NewRecord(Field{Name: "x", Val: NewInt(1)}),
		NewRecord(Field{Name: "x", Val: NewInt(2)}),
	}
	if err := e.RegisterValues("Xs", rows, "Record(Att(x, int))"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(`for { r <- Xs } yield sum r.x`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value().Int() != 3 {
		t.Fatalf("sum = %s", res)
	}
}

func TestExplainAndCatalog(t *testing.T) {
	e := setup(t)
	plan, err := e.Explain(`for { e <- Employees } yield sum e.salary`)
	if err != nil || plan == "" {
		t.Fatalf("Explain = %q, %v", plan, err)
	}
	cat := e.Catalog()
	if cat == "" {
		t.Fatal("empty catalog")
	}
	srcs := e.Sources()
	if len(srcs) != 2 {
		t.Fatalf("sources = %v", srcs)
	}
}

func TestStatsAndCaching(t *testing.T) {
	e := setup(t)
	q := `for { e <- Employees } yield sum e.salary`
	for i := 0; i < 3; i++ {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Queries != 3 {
		t.Fatalf("queries = %d", s.Queries)
	}
	if s.QueriesFromCache != 2 {
		t.Fatalf("cache-served = %d, want 2 (stats %+v)", s.QueriesFromCache, s)
	}
}

func TestExecutorOptionsAgree(t *testing.T) {
	q := `for { e <- Employees, d <- Departments, e.deptNo = d.id } yield bag (n := e.name, d := d.deptName)`
	var results []*Result
	for _, opts := range [][]Option{
		nil,
		{WithStaticExecutor()},
		{WithReferenceExecutor()},
		{WithAdaptiveOptimizer()},
		{WithoutCaching()},
		{WithCacheBudget(1 << 20)},
	} {
		e := setup(t, opts...)
		r, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	for i := 1; i < len(results); i++ {
		if !results[0].Value().Equal(results[i].Value()) {
			t.Fatalf("option set %d diverged: %s vs %s", i, results[i], results[0])
		}
	}
}

func TestParseQuery(t *testing.T) {
	if _, err := ParseQuery(`for { x <- Xs } yield sum x.a`); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseQuery(`for {`); err == nil {
		t.Fatal("bad query should fail")
	}
}

func TestRegisterSchemaErrors(t *testing.T) {
	e := New()
	if err := e.RegisterCSV("X", "/nope.csv", "NotASchema((", nil); err == nil {
		t.Fatal("bad schema should fail")
	}
	if err := e.RegisterJSON("Y", "/nope.json", "Record(Att(a, int)"); err == nil {
		t.Fatal("bad JSON schema should fail")
	}
}

func ExampleEngine_Query() {
	dir, _ := os.MkdirTemp("", "vida")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "t.csv")
	_ = os.WriteFile(path, []byte("id,v\n1,10\n2,20\n"), 0o644)

	eng := New()
	_ = eng.RegisterCSV("T", path, "Record(Att(id, int), Att(v, int))", nil)
	res, _ := eng.Query(`for { t <- T } yield sum t.v`)
	fmt.Println(res)
	// Output: 30
}

func TestAttachCleaner(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dirty.csv")
	csv := "id,age,city\n" +
		"1,45,geneva\n" +
		"2,300,bern\n" + // age out of range -> clamps to 120
		"3,50,genvea\n" + // typo -> nearest dictionary entry
		"-4,30,bern\n" // negative id -> row skipped
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New()
	must2(t, e.RegisterCSV("P", path,
		"Record(Att(id, int), Att(age, int), Att(city, string))", nil))
	must2(t, e.AttachCleaner("P",
		CleanRule{Attr: "id", Policy: CleanSkipRow, Min: CleanFloat(0)},
		CleanRule{Attr: "age", Policy: CleanNearest, Min: CleanFloat(0), Max: CleanFloat(120)},
		CleanRule{Attr: "city", Policy: CleanNearest, Dictionary: []string{"geneva", "bern"}},
	))
	res, err := e.Query(`for { p <- P } yield count 1`)
	must2(t, err)
	if res.Value().Int() != 3 {
		t.Fatalf("cleaned row count = %s, want 3", res)
	}
	res, err = e.Query(`for { p <- P } yield max p.age`)
	must2(t, err)
	if res.Value().Int() != 120 {
		t.Fatalf("clamped max age = %s", res)
	}
	res, err = e.Query(`for { p <- P, p.city = "geneva" } yield count 1`)
	must2(t, err)
	if res.Value().Int() != 2 {
		t.Fatalf("typo not repaired: geneva count = %s", res)
	}
	// Unknown source errors.
	if err := e.AttachCleaner("NoSuch"); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func must2(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
