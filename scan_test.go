package vida

import (
	"math"
	"strings"
	"testing"

	"vida/internal/values"
)

// valueOf wraps a raw engine value for convertAssign tests.
func valueOf(v values.Value) Value { return Value{raw: v} }

// TestScanConversionMatrix is the table-driven boundary suite for every
// numeric Scan destination: exact boundaries convert, one-past
// boundaries error, fractional floats are rejected by integer
// destinations, and the float32 range check refuses silent ±Inf
// narrowing.
func TestScanConversionMatrix(t *testing.T) {
	intv := func(i int64) values.Value { return values.NewInt(i) }
	floatv := func(f float64) values.Value { return values.NewFloat(f) }

	t.Run("integer boundaries", func(t *testing.T) {
		cases := []struct {
			name    string
			val     values.Value
			dst     func() any
			wantErr bool
		}{
			{"int8 min", intv(math.MinInt8), func() any { return new(int8) }, false},
			{"int8 max", intv(math.MaxInt8), func() any { return new(int8) }, false},
			{"int8 min-1", intv(math.MinInt8 - 1), func() any { return new(int8) }, true},
			{"int8 max+1", intv(math.MaxInt8 + 1), func() any { return new(int8) }, true},
			{"int16 min", intv(math.MinInt16), func() any { return new(int16) }, false},
			{"int16 max", intv(math.MaxInt16), func() any { return new(int16) }, false},
			{"int16 min-1", intv(math.MinInt16 - 1), func() any { return new(int16) }, true},
			{"int16 max+1", intv(math.MaxInt16 + 1), func() any { return new(int16) }, true},
			{"int32 min", intv(math.MinInt32), func() any { return new(int32) }, false},
			{"int32 max", intv(math.MaxInt32), func() any { return new(int32) }, false},
			{"int32 min-1", intv(math.MinInt32 - 1), func() any { return new(int32) }, true},
			{"int32 max+1", intv(math.MaxInt32 + 1), func() any { return new(int32) }, true},
			{"int64 min", intv(math.MinInt64), func() any { return new(int64) }, false},
			{"int64 max", intv(math.MaxInt64), func() any { return new(int64) }, false},
			{"uint8 zero", intv(0), func() any { return new(uint8) }, false},
			{"uint8 max", intv(math.MaxUint8), func() any { return new(uint8) }, false},
			{"uint8 max+1", intv(math.MaxUint8 + 1), func() any { return new(uint8) }, true},
			{"uint8 negative", intv(-1), func() any { return new(uint8) }, true},
			{"uint16 max", intv(math.MaxUint16), func() any { return new(uint16) }, false},
			{"uint16 max+1", intv(math.MaxUint16 + 1), func() any { return new(uint16) }, true},
			{"uint32 max", intv(math.MaxUint32), func() any { return new(uint32) }, false},
			{"uint32 max+1", intv(math.MaxUint32 + 1), func() any { return new(uint32) }, true},
			{"uint32 negative", intv(-1), func() any { return new(uint32) }, true},
			{"uint64 max int64", intv(math.MaxInt64), func() any { return new(uint64) }, false},
			{"uint64 negative", intv(-1), func() any { return new(uint64) }, true},
			{"uint negative", intv(-1), func() any { return new(uint) }, true},
			{"int from integral float", floatv(42), func() any { return new(int) }, false},
			{"int from fractional float", floatv(42.5), func() any { return new(int) }, true},
			{"int8 from fractional float", floatv(1.25), func() any { return new(int8) }, true},
			{"int from string", values.NewString("7"), func() any { return new(int) }, true},
		}
		for _, tc := range cases {
			dst := tc.dst()
			err := convertAssign(dst, valueOf(tc.val))
			if tc.wantErr && err == nil {
				t.Errorf("%s: conversion succeeded, want error", tc.name)
			}
			if !tc.wantErr && err != nil {
				t.Errorf("%s: %v", tc.name, err)
			}
		}
	})

	t.Run("float32 range check", func(t *testing.T) {
		var f32 float32
		// In-range values convert.
		if err := convertAssign(&f32, valueOf(floatv(3.5))); err != nil || f32 != 3.5 {
			t.Fatalf("in-range float32: %v (got %v)", err, f32)
		}
		if err := convertAssign(&f32, valueOf(floatv(math.MaxFloat32))); err != nil {
			t.Fatalf("MaxFloat32: %v", err)
		}
		if err := convertAssign(&f32, valueOf(floatv(-math.MaxFloat32))); err != nil {
			t.Fatalf("-MaxFloat32: %v", err)
		}
		// Out-of-range float64s used to narrow silently to ±Inf.
		for _, v := range []float64{math.MaxFloat64, -math.MaxFloat64, math.MaxFloat32 * 2, -math.MaxFloat32 * 2} {
			err := convertAssign(&f32, valueOf(floatv(v)))
			if err == nil {
				t.Fatalf("float64 %v narrowed into float32 without error (got %v)", v, f32)
			}
			if !strings.Contains(err.Error(), "overflows float32") {
				t.Fatalf("float64 %v: unexpected error %v", v, err)
			}
		}
		// Infinities round-trip exactly and stay assignable.
		if err := convertAssign(&f32, valueOf(floatv(math.Inf(1)))); err != nil || !math.IsInf(float64(f32), 1) {
			t.Fatalf("+Inf: %v (got %v)", err, f32)
		}
		if err := convertAssign(&f32, valueOf(floatv(math.Inf(-1)))); err != nil || !math.IsInf(float64(f32), -1) {
			t.Fatalf("-Inf: %v (got %v)", err, f32)
		}
		// NaN survives too.
		if err := convertAssign(&f32, valueOf(floatv(math.NaN()))); err != nil || !math.IsNaN(float64(f32)) {
			t.Fatalf("NaN: %v (got %v)", err, f32)
		}
		// Ints widen into float32 subject to the same range check.
		if err := convertAssign(&f32, valueOf(intv(1<<20))); err != nil || f32 != 1<<20 {
			t.Fatalf("int into float32: %v (got %v)", err, f32)
		}
	})

	t.Run("float64 accepts numerics only", func(t *testing.T) {
		var f64 float64
		if err := convertAssign(&f64, valueOf(intv(9))); err != nil || f64 != 9 {
			t.Fatalf("int into float64: %v", err)
		}
		if err := convertAssign(&f64, valueOf(values.NewString("x"))); err == nil {
			t.Fatal("string into float64 accepted")
		}
	})
}
