package vida_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vida"
)

// exampleCSV writes the small people.csv the examples query.
func exampleCSV() (path string, cleanup func()) {
	dir, err := os.MkdirTemp("", "vida-example")
	if err != nil {
		log.Fatal(err)
	}
	path = filepath.Join(dir, "people.csv")
	data := "id,name,age\n1,ada,36\n2,bob,41\n3,eve,29\n4,dan,54\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		log.Fatal(err)
	}
	return path, func() { os.RemoveAll(dir) }
}

const exampleSchema = "Record(Att(id, int), Att(name, string), Att(age, int))"

// ExampleEngine_QueryRows streams a result row by row through the
// cursor API: the first row arrives while the scan is still running,
// and memory stays bounded however large the file is.
func ExampleEngine_QueryRows() {
	path, cleanup := exampleCSV()
	defer cleanup()

	eng := vida.New()
	if err := eng.RegisterCSV("People", path, exampleSchema, nil); err != nil {
		log.Fatal(err)
	}
	rows, err := eng.QuerySQLRows(`SELECT name, age FROM People WHERE age > 30 ORDER BY age`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var name string
		var age int64
		if err := rows.Scan(&name, &age); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %d\n", name, age)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// ada 36
	// bob 41
	// dan 54
}

// ExamplePrepared_Run prepares a parameterized comprehension once and
// runs it with different bindings: the frontend (parse, type-check,
// optimize) runs a single time, and each Run substitutes its values
// into a copy of the cached plan.
func ExamplePrepared_Run() {
	path, cleanup := exampleCSV()
	defer cleanup()

	eng := vida.New()
	if err := eng.RegisterCSV("People", path, exampleSchema, nil); err != nil {
		log.Fatal(err)
	}
	p, err := eng.Prepare(`for { x <- People, x.age > $min } yield count x`)
	if err != nil {
		log.Fatal(err)
	}
	over30, err := p.Run(vida.Named("min", 30))
	if err != nil {
		log.Fatal(err)
	}
	over50, err := p.Run(vida.Named("min", 50))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(over30, over50)

	// Positional parameters work the same way through QuerySQL.
	res, err := eng.QuerySQL(`SELECT COUNT(*) FROM People WHERE age > $1`, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	// Output:
	// 3 1
	// 2
}
