package vida_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vida"
	"vida/internal/faultinject"
)

// writeCondPeopleCSV writes a deterministic CSV with a sequential int
// column, a high-cardinality string, a low-cardinality (dictionary
// friendly) string, and an int attribute.
func writeCondPeopleCSV(t *testing.T, dir string, n int) string {
	t.Helper()
	conds := []string{"healthy", "mild", "severe", "chronic", "acute"}
	var buf bytes.Buffer
	buf.WriteString("id,name,cond,age\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&buf, "%d,p%d,%s,%d\n", i, i, conds[i%len(conds)], 20+i%60)
	}
	path := filepath.Join(dir, "people.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const condPeopleSchema = "Record(Att(id, int), Att(name, string), Att(cond, string), Att(age, int))"

// TestRestartWarmFromCacheDir is the restart satellite: an engine with a
// cache directory answers its first post-restart query entirely from
// rehydrated spill blocks — the raw file is provably never scanned
// (every raw CSV batch read is armed to fail) yet results are identical.
func TestRestartWarmFromCacheDir(t *testing.T) {
	dir := t.TempDir()
	path := writeCondPeopleCSV(t, dir, 4000)
	cacheDir := filepath.Join(dir, "cache")
	queries := []string{
		`for { p <- People, p.age > 40 } yield avg p.id`,
		`for { p <- People, p.cond = "severe" } yield count p`,
	}

	eng1 := vida.New(vida.WithCacheDir(cacheDir))
	if err := eng1.RegisterCSV("People", path, condPeopleSchema, nil); err != nil {
		t.Fatal(err)
	}
	want := make([]*vida.Result, len(queries))
	for i, q := range queries {
		r, err := eng1.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}
	if spills, _ := filepath.Glob(filepath.Join(cacheDir, "*.vspill")); len(spills) == 0 {
		t.Fatal("no spill files written")
	}

	// "Restart": a fresh engine over the same cache dir, with every raw
	// CSV batch read armed to fail — any fallback to the raw file breaks
	// the query loudly instead of hiding behind a correct answer.
	faultinject.Set(faultinject.CSVRead, faultinject.Always(faultinject.ErrInjected))
	defer faultinject.Reset()
	eng2 := vida.New(vida.WithCacheDir(cacheDir))
	if err := eng2.RegisterCSV("People", path, condPeopleSchema, nil); err != nil {
		t.Fatal(err)
	}
	if st := eng2.Stats(); st.Cache.RehydratedBlocks == 0 {
		t.Fatalf("nothing rehydrated: %+v", st.Cache)
	}
	for i, q := range queries {
		r, err := eng2.Query(q)
		if err != nil {
			t.Fatalf("post-restart query %d read the raw file (or failed): %v", i, err)
		}
		if !r.Value().Equal(want[i].Value()) {
			t.Fatalf("query %d diverged after restart: %s vs %s", i, r, want[i])
		}
	}
	st := eng2.Stats()
	if st.RawScans != 0 {
		t.Fatalf("post-restart queries touched raw %d times", st.RawScans)
	}
	if st.Cache.DecodedBlocks == 0 {
		t.Fatal("post-restart queries decoded no blocks")
	}
}

// TestEncodedCacheAgreesWithHot extends the executor-equality suite to
// encoded sources: the same queries over a hot-vector cache, a
// forced-encoded cache, an uncached engine, and the reference executor
// must agree byte for byte — including dictionary-code filter fast
// paths on every relational operator (<, =, >, absent constants).
func TestEncodedCacheAgreesWithHot(t *testing.T) {
	dir := t.TempDir()
	path := writeCondPeopleCSV(t, dir, 2500)
	queries := []string{
		`for { p <- People, p.cond = "severe" } yield count p`,
		`for { p <- People, p.cond < "mild" } yield count p`,
		`for { p <- People, p.cond > "healthy", p.age > 30 } yield avg p.id`,
		`for { p <- People, p.cond = "zzz-not-present" } yield count p`,
		`for { p <- People, p.cond != "acute" } yield sum p.age`,
		`for { p <- People, p.name = "p100" } yield sum p.id`,
		`for { p <- People, p.id <= 20 } yield bag (c := p.cond) order by p.cond, p.id limit 10`,
		`for { p <- People, q <- People, p.id = q.id, q.cond = "mild" } yield count p`,
	}
	type config struct {
		name string
		opts []vida.Option
	}
	configs := []config{
		{"hot", nil},
		{"encoded", []vida.Option{vida.WithCacheHotBytes(1)}},
		{"uncached", []vida.Option{vida.WithoutCaching()}},
		{"reference", []vida.Option{vida.WithReferenceExecutor()}},
	}
	results := make(map[string][]*vida.Result)
	for _, cfg := range configs {
		eng := vida.New(cfg.opts...)
		if err := eng.RegisterCSV("People", path, condPeopleSchema, nil); err != nil {
			t.Fatal(err)
		}
		// Two passes: the first harvests (and, for "encoded", tiers) the
		// cache, the second runs against the tier under test.
		for pass := 0; pass < 2; pass++ {
			results[cfg.name] = results[cfg.name][:0]
			for _, q := range queries {
				r, err := eng.Query(q)
				if err != nil {
					t.Fatalf("%s: %s: %v", cfg.name, q, err)
				}
				results[cfg.name] = append(results[cfg.name], r)
			}
		}
		if cfg.name == "encoded" {
			if st := eng.Stats(); st.Cache.EncodedBytes == 0 || st.Cache.DecodedBlocks == 0 {
				t.Fatalf("encoded config never exercised the encoded tier: %+v", st.Cache)
			}
		}
	}
	for _, cfg := range configs[1:] {
		for i := range queries {
			if !results[cfg.name][i].Value().Equal(results["hot"][i].Value()) {
				t.Fatalf("%s diverged on %q: %s vs %s", cfg.name, queries[i], results[cfg.name][i], results["hot"][i])
			}
		}
	}
}
