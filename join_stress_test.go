// Race and determinism stress for the morsel-parallel partitioned hash
// join: two 300k-row CSVs joined while Refresh churn atomically replaces
// the build-side file underneath, plus mid-query cancellation once the
// build has started. Every completed parallel result must byte-equal the
// serial engine's, the engine must stay healthy after a cancelled join,
// and no goroutines may leak. These run under -race in CI.
package vida_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vida"
	"vida/internal/sched"
)

// joinStressRows is sized so both the parallel probe gate
// (ParallelThreshold) and the parallel build gate (JoinBuildThreshold)
// engage through the public API at their defaults.
const joinStressRows = 300_000

// writeJoinStressCSVs writes People(id,v) and Dim(id,w), both
// joinStressRows long with identical id domains, so every People row
// matches exactly one Dim row and aggregates are exactly computable.
func writeJoinStressCSVs(t testing.TB, dir string) (people, dim string) {
	t.Helper()
	write := func(name, header string, row func(i int) string) string {
		var sb strings.Builder
		sb.WriteString(header)
		for i := 0; i < joinStressRows; i++ {
			sb.WriteString(row(i))
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	people = write("people.csv", "id,v\n", func(i int) string {
		return fmt.Sprintf("%d,%d\n", i, i%7)
	})
	dim = write("dim.csv", "id,w\n", func(i int) string {
		return fmt.Sprintf("%d,%d\n", i, i%100)
	})
	return people, dim
}

func joinStressEngine(t testing.TB, people, dim string, opts ...vida.Option) *vida.Engine {
	t.Helper()
	eng := vida.New(opts...)
	if err := eng.RegisterCSV("People", people, "Record(Att(id, int), Att(v, int))", nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterCSV("Dim", dim, "Record(Att(id, int), Att(w, int))", nil); err != nil {
		t.Fatal(err)
	}
	return eng
}

// joinStressQueries exercise the join with a residual-free equi key, a
// probe-side predicate, and a build-side predicate that forces retained
// batches through selection compaction.
var joinStressQueries = []string{
	"for { p <- People, d <- Dim, p.id = d.id } yield count p",
	"for { p <- People, d <- Dim, p.id = d.id, d.w > 50 } yield sum p.v",
	"for { p <- People, d <- Dim, p.id = d.id, p.v = 3, d.w < 10 } yield count p",
}

// TestJoinParallelDeterminismUnderChurn joins the two 300k-row CSVs
// morsel-parallel while a churn goroutine atomically rewrites the
// build-side file (same bytes, new mtime) and calls Refresh, so cache
// invalidation and cold rescans race the partitioned build. Every
// completed result must equal the serial baseline, and closing
// everything must return the goroutine count to its starting level.
func TestJoinParallelDeterminismUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("300k-row join churn stress skipped in -short mode")
	}
	g0 := runtime.NumGoroutine()

	dir := t.TempDir()
	people, dim := writeJoinStressCSVs(t, dir)

	// Serial oracle on its own copy of the files, warmed before any
	// churn starts.
	serialDir := t.TempDir()
	sPeople, sDim := writeJoinStressCSVs(t, serialDir)
	serial := joinStressEngine(t, sPeople, sDim, vida.WithWorkers(1))
	expected := make(map[string]string, len(joinStressQueries))
	for _, q := range joinStressQueries {
		res, err := serial.Query(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		expected[q] = res.String()
	}

	pool := sched.NewPool(4)
	eng := joinStressEngine(t, people, dim,
		vida.WithScheduler(pool), vida.WithWorkers(4))

	// Churn the build side (Dim): atomic rename keeps readers off
	// partial files while Refresh invalidates caches and positional maps
	// mid-join.
	content, err := os.ReadFile(dim)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tmp := filepath.Join(dir, fmt.Sprintf("dim.tmp.%d", i))
			if err := os.WriteFile(tmp, content, 0o644); err != nil {
				t.Error(err)
				return
			}
			now := time.Now().Add(time.Duration(i+1) * 10 * time.Millisecond)
			os.Chtimes(tmp, now, now)
			if err := os.Rename(tmp, dim); err != nil {
				t.Error(err)
				return
			}
			if err := eng.Refresh(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const goroutines = 3
	const rounds = 2
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := joinStressQueries[(g+r)%len(joinStressQueries)]
				res, err := eng.Query(q)
				if err != nil {
					t.Errorf("parallel %s: %v", q, err)
					return
				}
				if got := res.String(); got != expected[q] {
					t.Errorf("parallel %s = %s, want %s", q, got, expected[q])
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := serial.Close(); err != nil {
		t.Fatal(err)
	}
	pool.Close()

	// No goroutine leaks: everything the join spawned (build morsels,
	// probe morsels, churn, pool workers) must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > g0+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: started with %d, still %d after close",
				g0, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJoinCancelMidProbeRecovers cancels a parallel join once the
// build index is sealed (JoinBuildRows bumps at seal, so the query is
// mid-probe) and asserts the cancellation surfaces as context.Canceled
// and a follow-up join on the same engine answers exactly — no cache
// poisoning from the aborted probe.
func TestJoinCancelMidProbeRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("300k-row join cancel stress skipped in -short mode")
	}
	dir := t.TempDir()
	people, dim := writeJoinStressCSVs(t, dir)
	pool := sched.NewPool(4)
	defer pool.Close()
	eng := joinStressEngine(t, people, dim,
		vida.WithScheduler(pool), vida.WithWorkers(4))
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buildBefore := eng.Stats().JoinBuildRows
	go func() {
		// JoinBuildRows is published when the index seals, well before
		// the 300k-row probe finishes.
		for eng.Stats().JoinBuildRows == buildBefore {
			time.Sleep(50 * time.Microsecond)
		}
		cancel()
	}()
	_, err := eng.QueryCtx(ctx, "for { p <- People, d <- Dim, p.id = d.id } yield count p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The abort was query-scoped: the identical join now completes with
	// the exact expected cardinality (bijective id domains).
	res, err := eng.Query("for { p <- People, d <- Dim, p.id = d.id } yield count p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value().Int() != joinStressRows {
		t.Fatalf("post-cancel join count = %d, want %d", res.Value().Int(), joinStressRows)
	}
}
