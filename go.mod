module vida

go 1.22
