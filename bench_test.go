// Benchmarks regenerating the paper's tables and figures (see DESIGN.md's
// experiment index and EXPERIMENTS.md for recorded outcomes). Each
// benchmark wraps the corresponding experiments.RunXxx at a small scale so
// `go test -bench=. -benchmem` finishes in minutes; cmd/vidabench runs the
// same experiments at arbitrary scale with the paper-style tables.
package vida_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"vida"
	"vida/internal/cache"
	"vida/internal/core"
	"vida/internal/experiments"
	"vida/internal/sched"
	"vida/internal/serve"
	"vida/internal/trace"
	"vida/internal/values"
	"vida/internal/workload"
)

// benchScale keeps benchmark iterations cheap while preserving the
// workload shapes.
func benchScale() workload.Scale {
	return workload.Scale{
		PatientsRows:   600,
		PatientsCols:   60,
		GeneticsRows:   700,
		GeneticsCols:   80,
		RegionsObjects: 250,
	}
}

// BenchmarkTable2_Generate regenerates the three datasets (Table 2).
func BenchmarkTable2_Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		if _, err := experiments.RunTable2(dir, benchScale(), 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_ViDa runs the full workload on ViDa only (the headline
// bar of Figure 5: no preparation, queries immediately).
func BenchmarkFig5_ViDa(b *testing.B) {
	dir := b.TempDir()
	sc := benchScale()
	paths, err := workload.GenerateAll(dir, sc, 42)
	if err != nil {
		b.Fatal(err)
	}
	w := workload.Generate(150, sc, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := vida.New()
		must(b, eng.RegisterCSV("Patients", paths.Patients, workload.PatientsSchema(sc), nil))
		must(b, eng.RegisterCSV("Genetics", paths.Genetics, workload.GeneticsSchema(sc), nil))
		must(b, eng.RegisterJSON("BrainRegions", paths.Regions, ""))
		for _, q := range w.Queries {
			if _, err := eng.Query(q.Comprehension()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5_AllSystems runs the complete five-system comparison once
// per iteration, verifying cross-system answer agreement.
func BenchmarkFig5_AllSystems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		res, err := experiments.RunFig5(dir, benchScale(), 60, 42)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.VerifyAnswersAgree(res); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup(), "speedup_x")
		b.ReportMetric(res.CacheHitRate()*100, "cachehit_%")
	}
}

// BenchmarkFig4_Layouts measures the four JSON-carrying layouts.
func BenchmarkFig4_Layouts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		rows, err := experiments.RunFig4(dir, benchScale(), 10, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.QuerySec*1000, r.Layout+"_ms")
		}
	}
}

// BenchmarkCacheHit_VsColStore measures E4: cache-served ViDa query
// latency against the loaded column store.
func BenchmarkCacheHit_VsColStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		res, err := experiments.RunCacheHits(dir, benchScale(), 60, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HitRate*100, "hit_%")
		b.ReportMetric(res.HitOverColFactor, "hit/col_x")
	}
}

// BenchmarkColdVsWarm measures E8: the raw-touch share of cumulative time.
func BenchmarkColdVsWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		res, err := experiments.RunColdWarm(dir, benchScale(), 60, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RawShareOfTotal*100, "rawshare_%")
	}
}

// BenchmarkMongoSpace measures E5: document-store import amplification.
func BenchmarkMongoSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		res, err := experiments.RunMongoSpace(dir, benchScale(), 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Amplification, "amplify_x")
	}
}

// BenchmarkJITvsStatic_ScanFilterAgg, _Join measure E6 per plan shape.
func BenchmarkJITvsStatic_Plans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		rows, err := experiments.RunJITvsStatic(dir, benchScale(), 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Ratio, r.Plan+"_x")
		}
	}
}

// BenchmarkPosmap_AttributeSweep measures E7.
func BenchmarkPosmap_AttributeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		rows, err := experiments.RunPosmap(dir, benchScale(), 42)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Speedup, "lastcol_speedup_x")
	}
}

// BenchmarkVerticalPartitioning measures E9 (uses a genetics width near
// the paper's so partitioning actually triggers; one load per run).
func BenchmarkVerticalPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		sc := benchScale()
		sc.GeneticsRows = 150
		res, err := experiments.RunVPart(dir, sc, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Partitions), "partitions")
		b.ReportMetric(res.StitchOverhead, "stitch_x")
	}
}

// BenchmarkFlatten measures E10.
func BenchmarkFlatten(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		res, err := experiments.RunFlatten(dir, benchScale(), 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FullRedundancy, "rows_per_obj")
	}
}

// BenchmarkQueryColdCSV / Warm isolate single-query engine latency on a
// raw CSV (first touch vs cached), the microscopic view of Figure 5.
func BenchmarkQueryColdCSV(b *testing.B) {
	dir := b.TempDir()
	sc := benchScale()
	path := filepath.Join(dir, "p.csv")
	if err := workload.GeneratePatients(path, sc, 42); err != nil {
		b.Fatal(err)
	}
	q := `for { p <- Patients, p.age > 40 } yield avg p.bmi`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := vida.New()
		must(b, eng.RegisterCSV("Patients", path, workload.PatientsSchema(sc), nil))
		if _, err := eng.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryWarmCSV(b *testing.B) {
	dir := b.TempDir()
	sc := benchScale()
	path := filepath.Join(dir, "p.csv")
	if err := workload.GeneratePatients(path, sc, 42); err != nil {
		b.Fatal(err)
	}
	eng := vida.New()
	must(b, eng.RegisterCSV("Patients", path, workload.PatientsSchema(sc), nil))
	q := `for { p <- Patients, p.age > 40 } yield avg p.bmi`
	if _, err := eng.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryWarmCSVTraced is the warm query with a span recorder
// armed on the context — compare against BenchmarkQueryWarmCSV to see
// the cost a served (always-traced) query pays over the library path.
func BenchmarkQueryWarmCSVTraced(b *testing.B) {
	dir := b.TempDir()
	sc := benchScale()
	path := filepath.Join(dir, "p.csv")
	if err := workload.GeneratePatients(path, sc, 42); err != nil {
		b.Fatal(err)
	}
	eng := vida.New()
	must(b, eng.RegisterCSV("Patients", path, workload.PatientsSchema(sc), nil))
	q := `for { p <- Patients, p.age > 40 } yield avg p.bmi`
	if _, err := eng.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trace.New(trace.NewID(), "bench")
		ctx := trace.WithTracer(context.Background(), tr)
		if _, err := eng.QueryCtx(ctx, q); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}

// TestTracingDisarmedNoExtraAllocs guards the tentpole's overhead
// contract: with no tracer on the context, the instrumented warm-query
// path allocates no more than it did before tracing existed (39
// allocs/op at the time this guard was written; the bound leaves a
// little slack so unrelated churn doesn't trip it).
func TestTracingDisarmedNoExtraAllocs(t *testing.T) {
	dir := t.TempDir()
	sc := benchScale()
	path := filepath.Join(dir, "p.csv")
	if err := workload.GeneratePatients(path, sc, 42); err != nil {
		t.Fatal(err)
	}
	eng := vida.New()
	if err := eng.RegisterCSV("Patients", path, workload.PatientsSchema(sc), nil); err != nil {
		t.Fatal(err)
	}
	q := `for { p <- Patients, p.age > 40 } yield avg p.bmi`
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := eng.Query(q); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 44 // pre-tracing baseline 39, plus slack
	if allocs > budget {
		t.Fatalf("disarmed warm query allocates %.0f/op, budget %d: tracing is no longer free when off", allocs, budget)
	}
}

// BenchmarkQueryWarmCSVParallel runs the warm query from many goroutines
// at once — the engine-level view of concurrent serving (plan cache,
// data cache and scan paths all shared).
func BenchmarkQueryWarmCSVParallel(b *testing.B) {
	dir := b.TempDir()
	sc := benchScale()
	path := filepath.Join(dir, "p.csv")
	if err := workload.GeneratePatients(path, sc, 42); err != nil {
		b.Fatal(err)
	}
	eng := vida.New()
	must(b, eng.RegisterCSV("Patients", path, workload.PatientsSchema(sc), nil))
	q := `for { p <- Patients, p.age > 40 } yield avg p.bmi`
	if _, err := eng.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPrepareWarmParallel isolates plan-cache contention: every
// iteration is a warm Prepare (parse/optimize skipped, only the cache
// lookup runs). The cache is sharded 16 ways; with one mutex this
// serializes completely under RunParallel.
func BenchmarkPrepareWarmParallel(b *testing.B) {
	dir := b.TempDir()
	sc := benchScale()
	path := filepath.Join(dir, "p.csv")
	if err := workload.GeneratePatients(path, sc, 42); err != nil {
		b.Fatal(err)
	}
	eng := vida.New()
	must(b, eng.RegisterCSV("Patients", path, workload.PatientsSchema(sc), nil))
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = fmt.Sprintf("for { p <- Patients, p.age > %d } yield count p", i)
		if _, err := eng.Prepare(queries[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := eng.Prepare(queries[i&63]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkServerConcurrentWarm measures the serving tier end to end: N
// parallel HTTP clients posting warm CSV queries through admission
// control, the session layer and JSON encoding. The result cache is
// disabled so every request executes (with it on, this collapses to an
// LRU hit).
func BenchmarkServerConcurrentWarm(b *testing.B) {
	dir := b.TempDir()
	sc := benchScale()
	path := filepath.Join(dir, "p.csv")
	if err := workload.GeneratePatients(path, sc, 42); err != nil {
		b.Fatal(err)
	}
	pool := sched.NewPool(0)
	defer pool.Close()
	eng := vida.New(vida.WithScheduler(pool))
	must(b, eng.RegisterCSV("Patients", path, workload.PatientsSchema(sc), nil))
	svc := serve.NewService(eng, pool, serve.Config{
		MaxInFlight:        256,
		ResultCacheEntries: -1,
	})
	ts := httptest.NewServer(serve.NewServer(svc).Handler())
	defer ts.Close()
	body := []byte(`{"query":"for { p <- Patients, p.age > 40 } yield avg p.bmi"}`)
	// Warm the scan and the prepared-statement cache.
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup status %d", resp.StatusCode)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}

// BenchmarkSQLTranslation measures the syntactic-sugar layer alone.
func BenchmarkSQLTranslation(b *testing.B) {
	eng := vida.New()
	sql := `SELECT e.deptNo, COUNT(*) AS c, AVG(e.salary) AS s
	        FROM Employees e WHERE e.salary > 50 GROUP BY e.deptNo`
	for i := 0; i < b.N; i++ {
		if _, err := eng.TranslateSQL(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func must(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

// TestMain keeps the benchmark scratch space tidy under -bench runs.
func TestMain(m *testing.M) {
	code := m.Run()
	matches, _ := filepath.Glob(filepath.Join(os.TempDir(), "vidabench*"))
	for _, m := range matches {
		os.RemoveAll(m)
	}
	if code != 0 {
		fmt.Fprintln(os.Stderr, "bench harness exited nonzero")
	}
	os.Exit(code)
}

// writeBigPeopleCSV writes an n-row id,name,age CSV for the pushdown
// benchmarks.
func writeBigPeopleCSV(b *testing.B, n int) string {
	b.Helper()
	dir := b.TempDir()
	path := filepath.Join(dir, "people.csv")
	var buf bytes.Buffer
	buf.WriteString("id,name,age\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&buf, "%d,p%d,%d\n", i, i, 20+i%60)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	return path
}

const bigPeopleSchema = "Record(Att(id, int), Att(name, string), Att(age, int))"

// BenchmarkLimitPushdownColdCSV measures the LIMIT early-stop win on a
// cold 300k-row first touch: the "limit10" variant must cancel its
// producers after a handful of batches, the "full" variant scans the
// file to the end. Each iteration builds a fresh engine so the scan is
// genuinely cold (no positional map, no cache). Acceptance: limit10 runs
// ≥5x faster than full.
func BenchmarkLimitPushdownColdCSV(b *testing.B) {
	path := writeBigPeopleCSV(b, 300_000)
	run := func(b *testing.B, q string, wantRows int) {
		for i := 0; i < b.N; i++ {
			eng := vida.New()
			must(b, eng.RegisterCSV("People", path, bigPeopleSchema, nil))
			res, err := eng.QuerySQL(q)
			if err != nil {
				b.Fatal(err)
			}
			if wantRows > 0 && res.Len() != wantRows {
				b.Fatalf("rows = %d, want %d", res.Len(), wantRows)
			}
		}
	}
	b.Run("limit10", func(b *testing.B) {
		run(b, `SELECT id FROM People LIMIT 10`, 10)
	})
	b.Run("full", func(b *testing.B) {
		run(b, `SELECT id FROM People`, 300_000)
	})
}

// boxifyColumns rebuilds a dataset's columnar cache entry under the
// boxed fallback layout — the representation every entry used before
// the typed cache — so benchmarks can A/B the layouts on identical
// data.
func boxifyColumns(b *testing.B, eng *vida.Engine, dataset string) {
	b.Helper()
	m := eng.Internal().Caches()
	e, ok := m.Peek(dataset, cache.LayoutColumns)
	if !ok {
		b.Fatalf("no columnar entry for %s", dataset)
	}
	boxed := make(map[string][]values.Value, len(e.Cols))
	for name, col := range e.Cols {
		c := col
		vs := make([]values.Value, e.N)
		for i := range vs {
			vs[i] = c.Value(i)
		}
		boxed[name] = vs
	}
	m.Invalidate(dataset)
	if err := m.PutColumns(dataset, e.N, boxed); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWarmCacheAggScan is the typed-cache acceptance benchmark: a
// warm 300k-row aggregate whose head is an arithmetic expression, in
// three configurations.
//
//   - typed: typed cache entry + vectorized expression kernels (the
//     engine as shipped)
//   - boxed: the same kernels over a boxed cache entry — isolates the
//     layout effect
//   - boxed-baseline: boxed entry with the kernels disabled (row-wise
//     head evaluation) — the pre-typed-cache engine, which paid ~2
//     allocations per row in the avg monoid's Unit/Merge
//
// Acceptance: typed beats boxed-baseline by ≥1.5x ns/op and ≥3x
// allocs/op (measured ~90x and ~7600x; see the README table).
func BenchmarkWarmCacheAggScan(b *testing.B) {
	path := writeBigPeopleCSV(b, 300_000)
	q := `for { p <- People, p.age > 40 } yield avg (p.id * 2 + p.age)`
	run := func(b *testing.B, opts []vida.Option, boxify bool) {
		eng := vida.New(opts...)
		must(b, eng.RegisterCSV("People", path, bigPeopleSchema, nil))
		if _, err := eng.Query(q); err != nil {
			b.Fatal(err)
		}
		if boxify {
			boxifyColumns(b, eng, "People")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("typed", func(b *testing.B) { run(b, nil, false) })
	b.Run("boxed", func(b *testing.B) { run(b, nil, true) })
	b.Run("boxed-baseline", func(b *testing.B) {
		run(b, []vida.Option{func(o *core.Options) { o.NoExprKernels = true }}, true)
	})
}

// BenchmarkJoinWarmTypedKeys measures the vectorized join-key path: a
// 300k-row probe against a 20k-row build side, both served warm from
// the columnar cache. typed hashes the key columns in one pass per
// batch with no boxing; boxed-baseline re-creates the seed layout
// (boxed entries), whose build and probe box every key row.
func BenchmarkJoinWarmTypedKeys(b *testing.B) {
	path := writeBigPeopleCSV(b, 300_000)
	dimPath := writeBigPeopleCSV(b, 20_000)
	q := `for { p <- People, d <- Dim, p.id = d.id, d.age > 50 } yield count p`
	run := func(b *testing.B, boxify bool) {
		eng := vida.New()
		must(b, eng.RegisterCSV("People", path, bigPeopleSchema, nil))
		must(b, eng.RegisterCSV("Dim", dimPath, bigPeopleSchema, nil))
		if _, err := eng.Query(q); err != nil {
			b.Fatal(err)
		}
		if boxify {
			boxifyColumns(b, eng, "People")
			boxifyColumns(b, eng, "Dim")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("typed", func(b *testing.B) { run(b, false) })
	b.Run("boxed-baseline", func(b *testing.B) { run(b, true) })
}

// BenchmarkOrderByExprKeyWarmCSV measures the computed-ORDER-BY-key
// kernel: the sort key is an arithmetic expression evaluated per batch
// by a typed kernel instead of per row through the closure chain.
func BenchmarkOrderByExprKeyWarmCSV(b *testing.B) {
	path := writeBigPeopleCSV(b, 300_000)
	eng := vida.New()
	must(b, eng.RegisterCSV("People", path, bigPeopleSchema, nil))
	q := `for { p <- People } yield bag p.id order by p.age * 2 desc, p.id limit 10`
	if _, err := eng.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 10 {
			b.Fatalf("rows = %d", res.Len())
		}
	}
}

// BenchmarkOrderByTopKWarmCSV measures the streaming top-k fold over a
// warm (cached, morsel-parallel) 300k-row scan: heap memory is
// O(limit), not O(rows).
func BenchmarkOrderByTopKWarmCSV(b *testing.B) {
	path := writeBigPeopleCSV(b, 300_000)
	eng := vida.New()
	must(b, eng.RegisterCSV("People", path, bigPeopleSchema, nil))
	q := `SELECT id, age FROM People ORDER BY age DESC, id LIMIT 10`
	if _, err := eng.QuerySQL(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.QuerySQL(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 10 {
			b.Fatalf("rows = %d", res.Len())
		}
	}
}

// BenchmarkMixedWorkload measures warm-query tail latency while a cold
// scan grinds in the background — the resource-governance contract: one
// expensive raw scan must not starve the cheap warm traffic sharing the
// admission gate and scheduler. The cold source is registered under many
// names over the same large file so each background scan is genuinely
// cold (fresh positional map, fresh cache state). Reports the warm p99
// next to the standard per-op numbers.
func BenchmarkMixedWorkload(b *testing.B) {
	dir := b.TempDir()
	sc := benchScale()
	warmPath := filepath.Join(dir, "p.csv")
	must(b, workload.GeneratePatients(warmPath, sc, 42))
	coldSc := sc
	coldSc.GeneticsRows = 20_000
	coldPath := filepath.Join(dir, "g.csv")
	must(b, workload.GenerateGenetics(coldPath, coldSc, 43))

	pool := sched.NewPool(0)
	defer pool.Close()
	eng := vida.New(vida.WithScheduler(pool))
	must(b, eng.RegisterCSV("Patients", warmPath, workload.PatientsSchema(sc), nil))
	const coldNames = 64
	for i := 0; i < coldNames; i++ {
		must(b, eng.RegisterCSV(fmt.Sprintf("Cold%d", i), coldPath, workload.GeneticsSchema(coldSc), nil))
	}
	svc := serve.NewService(eng, pool, serve.Config{
		MaxInFlight:        4,
		MaxQueue:           32,
		ResultCacheEntries: -1, // every warm request must execute
	})
	defer svc.Close()

	warm := "for { p <- Patients, p.age > 40 } yield avg p.bmi"
	if _, err := svc.Query(context.Background(), warm, nil, 0); err != nil {
		b.Fatal(err)
	}

	// One background client issuing cold scans back to back.
	stop := make(chan struct{})
	coldDone := make(chan struct{})
	go func() {
		defer close(coldDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := fmt.Sprintf("for { g <- Cold%d } yield count g", i%coldNames)
			if _, err := svc.Query(context.Background(), q, nil, 0); err != nil {
				b.Errorf("cold scan: %v", err)
				return
			}
		}
	}()

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := svc.Query(context.Background(), warm, nil, 0); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	close(stop)
	<-coldDone

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(p99.Microseconds())/1000, "warm-p99-ms")
}

// BenchmarkEncodedCacheAggScan measures the encoded cache tier against
// the hot (decoded vector) tier on the same warm 300k-row aggregate:
// the encoded variant forces every entry past the hot budget, so each
// query decodes dictionary/delta blocks on demand instead of reading
// resident vectors. The gap is the CPU price paid for the ~5x+ memory
// density (see TestEncodedTierCapacity).
func BenchmarkEncodedCacheAggScan(b *testing.B) {
	path := writeBigPeopleCSV(b, 300_000)
	q := `for { p <- People, p.age > 40 } yield avg p.id`
	run := func(b *testing.B, opts ...vida.Option) {
		eng := vida.New(opts...)
		must(b, eng.RegisterCSV("People", path, bigPeopleSchema, nil))
		if _, err := eng.Query(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("hot", func(b *testing.B) { run(b) })
	b.Run("encoded", func(b *testing.B) {
		run(b, vida.WithCacheHotBytes(1))
	})
}

// BenchmarkRestartWarmFirstQuery is the restart acceptance benchmark:
// the first query of a fresh engine over a populated cache directory
// (rehydrated encoded blocks + persisted positional map) against the
// same first query with no cache directory (a true cold raw-CSV scan
// that must parse every row and build the positional map). Engine
// construction and registration sit outside the timer in both variants
// so the numbers compare first-query latency, not process startup.
// Acceptance: rehydrated beats true-cold by ≥10x ns/op on 300k rows.
func BenchmarkRestartWarmFirstQuery(b *testing.B) {
	path := writeBigPeopleCSV(b, 300_000)
	q := `for { p <- People, p.age > 40 } yield avg p.id`
	cacheDir := filepath.Join(b.TempDir(), "cache")
	seed := vida.New(vida.WithCacheDir(cacheDir))
	must(b, seed.RegisterCSV("People", path, bigPeopleSchema, nil))
	if _, err := seed.Query(q); err != nil {
		b.Fatal(err)
	}
	must(b, seed.Close())

	run := func(b *testing.B, opts ...vida.Option) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := vida.New(opts...)
			must(b, eng.RegisterCSV("People", path, bigPeopleSchema, nil))
			b.StartTimer()
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("rehydrated", func(b *testing.B) { run(b, vida.WithCacheDir(cacheDir)) })
	b.Run("true-cold", func(b *testing.B) { run(b) })
}

// BenchmarkGroupByWarmCSV measures the single-pass vectorized hash
// aggregation over a warm 300k-row columnar cache. ungrouped is the
// scalar fold over the same scan and arithmetic expression; grouped
// computes the same aggregate per age group (60 groups) in one scan.
// Acceptance: grouped stays within ~2x of ungrouped — the group table
// adds a hash+probe per row, never a second pass over the data.
func BenchmarkGroupByWarmCSV(b *testing.B) {
	path := writeBigPeopleCSV(b, 300_000)
	run := func(b *testing.B, q string) {
		eng := vida.New()
		must(b, eng.RegisterCSV("People", path, bigPeopleSchema, nil))
		if _, err := eng.QuerySQL(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.QuerySQL(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("ungrouped", func(b *testing.B) {
		run(b, `SELECT AVG(p.id * 2 + p.age) FROM People p`)
	})
	b.Run("grouped", func(b *testing.B) {
		run(b, `SELECT p.age, AVG(p.id * 2 + p.age) AS a FROM People p GROUP BY p.age`)
	})
	b.Run("grouped-having", func(b *testing.B) {
		run(b, `SELECT p.age, COUNT(*) AS n, AVG(p.id * 2 + p.age) AS a
		    FROM People p GROUP BY p.age HAVING COUNT(*) > 1000 ORDER BY a DESC LIMIT 10`)
	})
}

// BenchmarkFig5Grouped runs grouped-aggregate variants of the Figure-5
// workload shapes — demographic rollups over Patients and a grouped
// join — on a warm engine, exercising the hash-aggregation operator
// over the evaluation datasets end to end.
func BenchmarkFig5Grouped(b *testing.B) {
	dir := b.TempDir()
	sc := benchScale()
	paths, err := workload.GenerateAll(dir, sc, 42)
	if err != nil {
		b.Fatal(err)
	}
	eng := vida.New()
	must(b, eng.RegisterCSV("Patients", paths.Patients, workload.PatientsSchema(sc), nil))
	must(b, eng.RegisterCSV("Genetics", paths.Genetics, workload.GeneticsSchema(sc), nil))
	queries := []string{
		`SELECT p.city, COUNT(*) AS n, AVG(p.bmi) AS bmi FROM Patients p GROUP BY p.city`,
		`SELECT p.gender, AVG(p.age) AS age FROM Patients p GROUP BY p.gender HAVING COUNT(*) > 10`,
		`SELECT p.city, p.gender, SUM(p.visits) AS v FROM Patients p
		    WHERE p.age > 40 GROUP BY p.city, p.gender ORDER BY v DESC LIMIT 5`,
		`SELECT p.city, AVG(g.snp0) AS s FROM Patients p JOIN Genetics g ON (p.id = g.id)
		    GROUP BY p.city`,
	}
	for _, q := range queries {
		if _, err := eng.QuerySQL(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := eng.QuerySQL(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// writeJoinDimCSV writes the n-row build side Dim(id,w) with ids 1..n,
// so joining it against writeBigPeopleCSV (ids 1..300k) on id yields
// exactly n matches.
func writeJoinDimCSV(b *testing.B, n int) string {
	b.Helper()
	dir := b.TempDir()
	path := filepath.Join(dir, "dim.csv")
	var buf bytes.Buffer
	buf.WriteString("id,w\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&buf, "%d,%d\n", i, i%100)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	return path
}

const joinDimSchema = "Record(Att(id, int), Att(w, int))"

// joinBenchEngine registers the 300k-row probe and 60k-row build CSVs
// on an engine whose morsel fan-out is workers wide.
func joinBenchEngine(b *testing.B, people, dim string, pool *sched.Pool, workers int) *vida.Engine {
	b.Helper()
	eng := vida.New(vida.WithScheduler(pool), vida.WithWorkers(workers))
	must(b, eng.RegisterCSV("People", people, bigPeopleSchema, nil))
	must(b, eng.RegisterCSV("Dim", dim, joinDimSchema, nil))
	return eng
}

const joinBenchQuery = "for { p <- People, d <- Dim, p.id = d.id } yield count p"

// BenchmarkJoinParallelWarm measures the morsel-parallel partitioned
// hash join against the serial build+probe on warm columnar caches:
// 300k probe rows against a 60k-row build side. Acceptance (ROADMAP):
// parallel at 4 workers ≥2x serial on a 4-core host.
func BenchmarkJoinParallelWarm(b *testing.B) {
	people := writeBigPeopleCSV(b, 300_000)
	dim := writeJoinDimCSV(b, 60_000)
	run := func(b *testing.B, workers int) {
		pool := sched.NewPool(workers)
		defer pool.Close()
		eng := joinBenchEngine(b, people, dim, pool, workers)
		res, err := eng.Query(joinBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if res.Value().Int() != 60_000 {
			b.Fatalf("warmup count = %d, want 60000", res.Value().Int())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(joinBenchQuery); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkJoinParallelColdCSV is the same join on a genuinely cold
// first touch — fresh engine per iteration, so the raw CSV scans, the
// partitioned build, and the probe all count.
func BenchmarkJoinParallelColdCSV(b *testing.B) {
	people := writeBigPeopleCSV(b, 300_000)
	dim := writeJoinDimCSV(b, 60_000)
	run := func(b *testing.B, workers int) {
		pool := sched.NewPool(workers)
		defer pool.Close()
		for i := 0; i < b.N; i++ {
			eng := joinBenchEngine(b, people, dim, pool, workers)
			res, err := eng.Query(joinBenchQuery)
			if err != nil {
				b.Fatal(err)
			}
			if res.Value().Int() != 60_000 {
				b.Fatalf("count = %d, want 60000", res.Value().Int())
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel4", func(b *testing.B) { run(b, 4) })
}
