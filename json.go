package vida

import (
	"encoding/json"
	"math"
	"strconv"
)

// AppendJSON renders the value as JSON appended to dst, preserving
// record field order (encoding/json maps would lose it, and result rows
// are ordered records). Floats JSON cannot represent (NaN, ±Inf) become
// null; lists, bags, sets and arrays all render as JSON arrays.
func (v Value) AppendJSON(dst []byte) []byte {
	switch v.Kind() {
	case "null":
		return append(dst, "null"...)
	case "bool":
		return strconv.AppendBool(dst, v.Bool())
	case "int":
		return strconv.AppendInt(dst, v.Int(), 10)
	case "float":
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return append(dst, "null"...)
		}
		return strconv.AppendFloat(dst, f, 'g', -1, 64)
	case "string":
		return appendJSONString(dst, v.Str())
	case "record":
		dst = append(dst, '{')
		for i, f := range v.Fields() {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, f.Name)
			dst = append(dst, ':')
			dst = f.Val.AppendJSON(dst)
		}
		return append(dst, '}')
	default: // list, bag, set, array
		dst = append(dst, '[')
		for i, e := range v.Elems() {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = e.AppendJSON(dst)
		}
		return append(dst, ']')
	}
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	return v.AppendJSON(nil), nil
}

// appendJSONString appends a JSON-escaped string literal.
func appendJSONString(dst []byte, s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for strings
		return append(dst, `""`...)
	}
	return append(dst, b...)
}
