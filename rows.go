package vida

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"vida/internal/core"
	"vida/internal/sdg"
	"vida/internal/values"
)

// NamedArg binds a value to a named query parameter ($name in the
// comprehension language). Positional arguments bind $1..$n (and SQL's
// ?) in order; NamedArg values may be mixed in freely.
type NamedArg struct {
	Name  string
	Value any
}

// Named builds a NamedArg.
func Named(name string, value any) NamedArg { return NamedArg{Name: name, Value: value} }

// argsToParams converts public query arguments into the engine's
// parameter bindings: plain values bind positionally as $1..$n,
// NamedArg values bind by name.
func argsToParams(args []any) (map[string]values.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	params := make(map[string]values.Value, len(args))
	pos := 0
	for _, a := range args {
		if na, ok := a.(NamedArg); ok {
			v, err := toValue(na.Value)
			if err != nil {
				return nil, fmt.Errorf("vida: parameter $%s: %w", na.Name, err)
			}
			params[na.Name] = v
			continue
		}
		pos++
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("vida: parameter $%d: %w", pos, err)
		}
		params[strconv.Itoa(pos)] = v
	}
	return params, nil
}

// toValue converts a Go value into an engine value.
func toValue(a any) (values.Value, error) {
	switch v := a.(type) {
	case nil:
		return values.Null, nil
	case Value:
		return v.raw, nil
	case bool:
		return values.NewBool(v), nil
	case int:
		return values.NewInt(int64(v)), nil
	case int8:
		return values.NewInt(int64(v)), nil
	case int16:
		return values.NewInt(int64(v)), nil
	case int32:
		return values.NewInt(int64(v)), nil
	case int64:
		return values.NewInt(v), nil
	case uint:
		return values.NewInt(int64(v)), nil
	case uint8:
		return values.NewInt(int64(v)), nil
	case uint16:
		return values.NewInt(int64(v)), nil
	case uint32:
		return values.NewInt(int64(v)), nil
	case uint64:
		if v > 1<<63-1 {
			return values.Null, fmt.Errorf("uint64 value %d overflows int64", v)
		}
		return values.NewInt(int64(v)), nil
	case float32:
		return values.NewFloat(float64(v)), nil
	case float64:
		return values.NewFloat(v), nil
	case string:
		return values.NewString(v), nil
	case []byte:
		return values.NewString(string(v)), nil
	case time.Time:
		return values.NewString(v.Format(time.RFC3339Nano)), nil
	}
	return values.Null, fmt.Errorf("unsupported parameter type %T", a)
}

// Rows is a streaming cursor over a query's result: rows are produced
// batch-at-a-time by the engine (morsel-parallel for large raw scans)
// and pulled one at a time with Next, so results larger than memory
// stream with bounded residency and the first row arrives long before
// the last would. The usage mirrors database/sql:
//
//	rows, err := eng.QuerySQLRows(`SELECT name, age FROM People WHERE age > $1`, 40)
//	defer rows.Close()
//	for rows.Next() {
//	    var name string
//	    var age int64
//	    if err := rows.Scan(&name, &age); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// A Rows is not safe for concurrent use. Close is idempotent and must
// be called; abandoning an open cursor pins a query slot (and, for a
// streaming cursor, its scheduler workers) until its context ends.
type Rows struct {
	inner    *core.Rows
	cols     []string
	colTypes []*sdg.Type

	chunk  []values.Value
	pos    int
	cur    Value
	peeked bool
	err    error

	// closed is atomic: iteration is single-goroutine, but Close may be
	// called twice concurrently (a deferred Close racing a cleanup path)
	// and must stay safe.
	closed atomic.Bool
}

// newRows wraps a core cursor, deriving column names from the prepared
// result type when it is known. Unknown-schema results resolve their
// columns lazily from the first row.
func newRows(inner *core.Rows, typ *sdg.Type) *Rows {
	return &Rows{inner: inner, cols: columnsFromType(typ), colTypes: columnTypesFromType(typ)}
}

// columnsFromType extracts result column names from a prepared query's
// type: collection-of-record results name one column per attribute,
// scalar collections a single "value" column.
func columnsFromType(t *sdg.Type) []string {
	if t == nil {
		return nil
	}
	switch t.Kind {
	case sdg.TList, sdg.TBag, sdg.TSet, sdg.TArray:
		t = t.Elem
	}
	if t == nil || t.Kind == sdg.TUnknown {
		return nil
	}
	if t.Kind == sdg.TRecord {
		return t.AttrNames()
	}
	return []string{"value"}
}

// columnTypesFromType extracts the per-column result types, mirroring
// columnsFromType's unwrapping. Unknown-schema results return nil: their
// columns resolve lazily from data and carry no declared types.
func columnTypesFromType(t *sdg.Type) []*sdg.Type {
	if t == nil {
		return nil
	}
	switch t.Kind {
	case sdg.TList, sdg.TBag, sdg.TSet, sdg.TArray:
		t = t.Elem
	}
	if t == nil || t.Kind == sdg.TUnknown {
		return nil
	}
	if t.Kind == sdg.TRecord {
		types := make([]*sdg.Type, len(t.Attrs))
		for i, a := range t.Attrs {
			types[i] = a.Type
		}
		return types
	}
	return []*sdg.Type{t}
}

// ColumnTypeName reports the declared type of column i as a
// database-style name: BOOL, INT, FLOAT, STRING, or JSON for nested
// record/collection columns (which render as JSON text at scalar
// boundaries such as database/sql). The empty string means the column's
// type is not statically known — open-schema results infer their columns
// from the first row and carry no declared types.
func (r *Rows) ColumnTypeName(i int) string {
	if i < 0 || i >= len(r.colTypes) || r.colTypes[i] == nil {
		return ""
	}
	switch r.colTypes[i].Kind {
	case sdg.TBool:
		return "BOOL"
	case sdg.TInt:
		return "INT"
	case sdg.TFloat:
		return "FLOAT"
	case sdg.TString:
		return "STRING"
	case sdg.TRecord, sdg.TList, sdg.TBag, sdg.TSet, sdg.TArray:
		return "JSON"
	}
	return ""
}

// fetch advances to the next row, loading chunks as needed.
func (r *Rows) fetch() bool {
	if r.closed.Load() || r.err != nil {
		return false
	}
	for r.pos >= len(r.chunk) {
		chunk, err := r.inner.NextChunk()
		if err != nil {
			r.err = err
			return false
		}
		if chunk == nil {
			return false
		}
		r.chunk, r.pos = chunk, 0
	}
	r.cur = Value{raw: r.chunk[r.pos]}
	r.pos++
	return true
}

// Next advances the cursor to the next row, returning false at the end
// of the result or on error (check Err afterwards).
func (r *Rows) Next() bool {
	if r.peeked {
		r.peeked = false
		return true
	}
	return r.fetch()
}

// Columns returns the result's column names. For open-schema sources
// the names come from the first row, which Columns fetches ahead of
// Next (the row is not lost).
func (r *Rows) Columns() []string {
	if r.cols != nil {
		return r.cols
	}
	if !r.peeked && r.fetch() {
		r.peeked = true
	}
	if r.peeked && r.cur.Kind() == "record" {
		fields := r.cur.Fields()
		cols := make([]string, len(fields))
		for i, f := range fields {
			cols[i] = f.Name
		}
		r.cols = cols
	} else {
		r.cols = []string{"value"}
	}
	return r.cols
}

// Value returns the current row as an engine value (valid after a true
// Next).
func (r *Rows) Value() Value { return r.cur }

// ChunkBoundary reports whether the current row was the last of its
// underlying producer chunk — i.e. the next Next will block on the
// engine for a fresh batch. Streaming writers (the HTTP NDJSON endpoint)
// flush on chunk boundaries so buffered rows never wait on a slow
// producer.
func (r *Rows) ChunkBoundary() bool {
	return !r.peeked && r.pos >= len(r.chunk)
}

// Scan copies the current row into dest: one destination per column for
// record rows (in column order), a single destination otherwise.
// Supported destinations: *int, *int8..*int64, *uint..*uint64, *float32,
// *float64, *string, *bool, *[]byte, *any and *Value; numeric
// conversions widen or round-trip exactly or fail.
func (r *Rows) Scan(dest ...any) error {
	if r.closed.Load() {
		return fmt.Errorf("vida: Scan on closed Rows")
	}
	row := r.cur
	if row.Kind() == "record" {
		fields := row.Fields()
		if len(dest) != len(fields) {
			return fmt.Errorf("vida: Scan expects %d destinations, got %d", len(fields), len(dest))
		}
		for i, f := range fields {
			if err := convertAssign(dest[i], f.Val); err != nil {
				return fmt.Errorf("vida: Scan column %q: %w", f.Name, err)
			}
		}
		return nil
	}
	if len(dest) != 1 {
		return fmt.Errorf("vida: Scan expects 1 destination for a scalar row, got %d", len(dest))
	}
	if err := convertAssign(dest[0], row); err != nil {
		return fmt.Errorf("vida: Scan: %w", err)
	}
	return nil
}

// Err returns the error that terminated iteration, if any. A cursor
// cancelled by its own Close reports no error.
func (r *Rows) Err() error { return r.err }

// Close aborts the stream and releases its resources. Idempotent and
// safe under concurrent double-close (including one racing a producer
// error); safe to call mid-iteration or after exhaustion.
func (r *Rows) Close() error {
	r.closed.Store(true)
	return r.inner.Close()
}

// convertAssign stores v into the destination pointer.
func convertAssign(dst any, v Value) error {
	raw := v.raw
	switch d := dst.(type) {
	case *Value:
		*d = v
		return nil
	case *any:
		*d = goValue(raw)
		return nil
	case *string:
		if raw.Kind() == values.KindString {
			*d = raw.Str()
		} else {
			*d = raw.String()
		}
		return nil
	case *[]byte:
		if raw.IsNull() {
			*d = nil
		} else if raw.Kind() == values.KindString {
			*d = []byte(raw.Str())
		} else {
			*d = []byte(raw.String())
		}
		return nil
	case *bool:
		if raw.Kind() != values.KindBool {
			return fmt.Errorf("cannot assign %s to *bool", v.Kind())
		}
		*d = raw.Bool()
		return nil
	case *float64:
		if !raw.IsNumeric() {
			return fmt.Errorf("cannot assign %s to *float64", v.Kind())
		}
		*d = raw.Float()
		return nil
	case *float32:
		if !raw.IsNumeric() {
			return fmt.Errorf("cannot assign %s to *float32", v.Kind())
		}
		f := raw.Float()
		// Out-of-range float64s silently become ±Inf under a bare
		// float32 conversion; fail instead, matching the overflow
		// discipline of the integer destinations. Infinities and NaN
		// round-trip exactly and stay assignable.
		if !math.IsInf(f, 0) && (f > math.MaxFloat32 || f < -math.MaxFloat32) {
			return fmt.Errorf("value %v overflows float32", f)
		}
		*d = float32(f)
		return nil
	}
	// Integer destinations share bounds checking.
	i, err := intValue(v)
	if err != nil {
		return err
	}
	switch d := dst.(type) {
	case *int:
		if int64(int(i)) != i {
			return fmt.Errorf("value %d overflows int", i)
		}
		*d = int(i)
	case *int8:
		if i < -128 || i > 127 {
			return fmt.Errorf("value %d overflows int8", i)
		}
		*d = int8(i)
	case *int16:
		if i < -32768 || i > 32767 {
			return fmt.Errorf("value %d overflows int16", i)
		}
		*d = int16(i)
	case *int32:
		if i < -1<<31 || i > 1<<31-1 {
			return fmt.Errorf("value %d overflows int32", i)
		}
		*d = int32(i)
	case *int64:
		*d = i
	case *uint:
		if i < 0 || uint64(i) > uint64(^uint(0)) {
			return fmt.Errorf("value %d overflows uint", i)
		}
		*d = uint(i)
	case *uint8:
		if i < 0 || i > 255 {
			return fmt.Errorf("value %d overflows uint8", i)
		}
		*d = uint8(i)
	case *uint16:
		if i < 0 || i > 65535 {
			return fmt.Errorf("value %d overflows uint16", i)
		}
		*d = uint16(i)
	case *uint32:
		if i < 0 || i > 1<<32-1 {
			return fmt.Errorf("value %d overflows uint32", i)
		}
		*d = uint32(i)
	case *uint64:
		if i < 0 {
			return fmt.Errorf("value %d overflows uint64", i)
		}
		*d = uint64(i)
	default:
		return fmt.Errorf("unsupported Scan destination %T", dst)
	}
	return nil
}

// intValue extracts an int64, accepting floats with no fractional part.
func intValue(v Value) (int64, error) {
	raw := v.raw
	switch raw.Kind() {
	case values.KindInt:
		return raw.Int(), nil
	case values.KindFloat:
		f := raw.Float()
		i := int64(f)
		if float64(i) != f {
			return 0, fmt.Errorf("float value %v is not an integer", f)
		}
		return i, nil
	}
	return 0, fmt.Errorf("cannot assign %s to an integer destination", v.Kind())
}

// goValue converts an engine value to a native Go value: scalars map
// directly, records to ordered field slices are not expressible so they
// (and collections) render as their literal string.
func goValue(v values.Value) any {
	switch v.Kind() {
	case values.KindNull:
		return nil
	case values.KindBool:
		return v.Bool()
	case values.KindInt:
		return v.Int()
	case values.KindFloat:
		return v.Float()
	case values.KindString:
		return v.Str()
	default:
		return v.String()
	}
}

// collectValue drains a cursor and rebuilds the collection value under
// the root monoid — the collect-over-cursor path Query uses, which
// guarantees the buffered and streaming APIs see identical execution.
func collectValue(rows *core.Rows, monoidName string) (values.Value, error) {
	defer rows.Close()
	var elems []values.Value
	for {
		chunk, err := rows.NextChunk()
		if err != nil {
			return values.Null, err
		}
		if chunk == nil {
			break
		}
		elems = append(elems, chunk...)
	}
	switch monoidName {
	case "list":
		return values.NewList(elems...), nil
	case "set":
		return values.NewSet(elems...), nil
	default:
		return values.NewBag(elems...), nil
	}
}

// QueryRows runs a comprehension query and returns a streaming cursor
// over its result. Positional args bind $1..$n; NamedArg values bind
// $name parameters.
func (e *Engine) QueryRows(src string, args ...any) (*Rows, error) {
	return e.QueryRowsCtx(context.Background(), src, args...)
}

// QueryRowsCtx is QueryRows under a cancellation context: cancelling ctx
// aborts the stream mid-scan.
func (e *Engine) QueryRowsCtx(ctx context.Context, src string, args ...any) (*Rows, error) {
	p, err := e.PrepareCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	return p.RunRowsCtx(ctx, args...)
}

// QuerySQLRows translates a SQL query and returns a streaming cursor.
func (e *Engine) QuerySQLRows(src string, args ...any) (*Rows, error) {
	return e.QuerySQLRowsCtx(context.Background(), src, args...)
}

// QuerySQLRowsCtx is QuerySQLRows under a cancellation context.
func (e *Engine) QuerySQLRowsCtx(ctx context.Context, src string, args ...any) (*Rows, error) {
	comp, err := e.TranslateSQL(src)
	if err != nil {
		return nil, err
	}
	return e.QueryRowsCtx(ctx, comp, args...)
}

// RunRows executes the prepared query as a streaming cursor.
func (p *Prepared) RunRows(args ...any) (*Rows, error) {
	return p.RunRowsCtx(context.Background(), args...)
}

// RunRowsCtx is RunRows under a cancellation context.
func (p *Prepared) RunRowsCtx(ctx context.Context, args ...any) (*Rows, error) {
	params, err := argsToParams(args)
	if err != nil {
		return nil, err
	}
	inner, err := p.inner.RowsCtx(ctx, params)
	if err != nil {
		return nil, err
	}
	return newRows(inner, p.inner.Type), nil
}

// Params returns the query's bind-parameter names in first-occurrence
// order (positional parameters are named "1".."n").
func (p *Prepared) Params() []string { return p.inner.ParamNames() }
