// Command vidaql runs queries over raw data files from the shell — the
// "analysis begins with ad hoc querying and not by building a database"
// workflow of the paper (§2).
//
// Sources are registered with -csv/-json/-array/-xls flags of the form
// name=path[:schema] where schema is the source description grammar (CSV
// without a schema infers string columns from the header). The query is
// the final argument, or use -i for a simple interactive loop.
//
//	vidaql -csv 'Emps=emps.csv:Record(Att(id,int), Att(name,string))' \
//	       'for { e <- Emps, e.id > 1 } yield count e'
//
//	vidaql -json Regions=regions.json -sql 'SELECT COUNT(r.id) FROM Regions r'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vida"
)

type sourceFlag struct {
	kind    string
	entries []string
}

func (s *sourceFlag) String() string { return strings.Join(s.entries, ",") }
func (s *sourceFlag) Set(v string) error {
	s.entries = append(s.entries, v)
	return nil
}

func main() {
	var csvs, jsons, arrays, xlss sourceFlag
	flag.Var(&csvs, "csv", "CSV source: name=path[:schema] (repeatable)")
	flag.Var(&jsons, "json", "JSON source: name=path (repeatable)")
	flag.Var(&arrays, "array", "binary array source: name=path:schema (repeatable)")
	flag.Var(&xlss, "xls", "spreadsheet source: name=path:schema (repeatable)")
	sql := flag.Bool("sql", false, "treat the query as SQL")
	explain := flag.Bool("explain", false, "print the optimized plan instead of running")
	interactive := flag.Bool("i", false, "interactive loop")
	static := flag.Bool("static", false, "use the static (channel) executor")
	flag.Parse()

	var opts []vida.Option
	if *static {
		opts = append(opts, vida.WithStaticExecutor())
	}
	eng := vida.New(opts...)
	registerAll(eng, csvs.entries, "csv")
	registerAll(eng, jsons.entries, "json")
	registerAll(eng, arrays.entries, "array")
	registerAll(eng, xlss.entries, "xls")

	if *interactive {
		repl(eng, *sql)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "vidaql: exactly one query argument expected (or -i)")
		os.Exit(2)
	}
	query := flag.Arg(0)
	if err := runOne(eng, query, *sql, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "vidaql:", err)
		os.Exit(1)
	}
}

func runOne(eng *vida.Engine, query string, sql, explain bool) error {
	if sql {
		text, err := eng.TranslateSQL(query)
		if err != nil {
			return err
		}
		query = text
	}
	if explain {
		plan, err := eng.Explain(query)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	res, err := eng.Query(query)
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

func printResult(res *vida.Result) {
	rows := res.Rows()
	if len(rows) == 1 && rows[0].Kind() != "record" {
		fmt.Println(rows[0])
		return
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Printf("(%d rows)\n", len(rows))
}

// runStreaming runs one interactive query through the cursor API: rows
// print as they stream off the engine, so large results display
// immediately instead of after full materialization. Session parameters
// (\set) bind the query's $name placeholders.
func runStreaming(eng *vida.Engine, query string, sql bool, params map[string]any) error {
	if sql {
		text, err := eng.TranslateSQL(query)
		if err != nil {
			return err
		}
		query = text
	}
	p, err := eng.Prepare(query)
	if err != nil {
		return err
	}
	// Bind only the parameters this query declares: the session may hold
	// bindings for other queries.
	var args []any
	for _, name := range p.Params() {
		if val, ok := params[name]; ok {
			args = append(args, vida.Named(name, val))
		}
	}
	rows, err := p.RunRows(args...)
	if err != nil {
		return err
	}
	defer rows.Close()
	n := 0
	scalar := false
	for rows.Next() {
		v := rows.Value()
		scalar = n == 0 && v.Kind() != "record"
		fmt.Println(v)
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if !(n == 1 && scalar) {
		fmt.Printf("(%d rows)\n", n)
	}
	return nil
}

// parseParamValue reads a \set value: int, float, bool and null parse
// natively; anything else (optionally quoted) is a string.
func parseParamValue(text string) any {
	switch text {
	case "true":
		return true
	case "false":
		return false
	case "null":
		return nil
	}
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return f
	}
	if len(text) >= 2 && (text[0] == '\'' || text[0] == '"') && text[len(text)-1] == text[0] {
		return text[1 : len(text)-1]
	}
	return text
}

func repl(eng *vida.Engine, sql bool) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	params := map[string]any{}
	fmt.Println("vidaql — \\catalog lists sources, \\stats shows engine counters,")
	fmt.Println("         \\set name value binds $name, \\unset name drops it, \\params lists bindings, \\q quits")
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "\\q":
			return
		case line == "\\catalog":
			fmt.Print(eng.Catalog())
		case line == "\\stats":
			st := eng.Stats()
			fmt.Printf("queries=%d cache-served=%d raw-touch=%d cache-bytes=%d aux-bytes=%d\n",
				st.Queries, st.QueriesFromCache, st.QueriesTouchedRaw, st.Cache.BytesUsed, st.AuxiliaryBytes)
		case line == "\\params":
			for name, val := range params {
				fmt.Printf("$%s = %v\n", name, val)
			}
		case strings.HasPrefix(line, "\\set "):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "\\set "))
			name, val, ok := strings.Cut(rest, " ")
			if !ok {
				fmt.Println("usage: \\set name value")
				break
			}
			params[strings.TrimPrefix(name, "$")] = parseParamValue(strings.TrimSpace(val))
		case strings.HasPrefix(line, "\\unset "):
			delete(params, strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(line, "\\unset ")), "$"))
		case strings.HasPrefix(line, "\\explain "):
			if err := runOne(eng, strings.TrimPrefix(line, "\\explain "), sql, true); err != nil {
				fmt.Println("error:", err)
			}
		default:
			if err := runStreaming(eng, line, sql, params); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("> ")
	}
}

func registerAll(eng *vida.Engine, entries []string, kind string) {
	for _, e := range entries {
		name, rest, ok := strings.Cut(e, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "vidaql: bad -%s %q (want name=path[:schema])\n", kind, e)
			os.Exit(2)
		}
		path, schema, _ := strings.Cut(rest, ":")
		var err error
		switch kind {
		case "csv":
			if schema == "" {
				schema, err = inferCSVSchema(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "vidaql: %s: %v\n", name, err)
					os.Exit(2)
				}
			}
			err = eng.RegisterCSV(name, path, schema, nil)
		case "json":
			err = eng.RegisterJSON(name, path, schema)
		case "array":
			err = eng.RegisterArray(name, path, schema)
		case "xls":
			err = eng.RegisterXLS(name, path, schema)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vidaql: register %s: %v\n", name, err)
			os.Exit(2)
		}
	}
}

// inferCSVSchema reads the header line and declares every column string —
// the minimal description that lets exploration start; users refine types
// in the schema argument when they need arithmetic.
func inferCSVSchema(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return "", fmt.Errorf("empty file")
	}
	cols := strings.Split(strings.TrimSpace(sc.Text()), ",")
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("Att(%s, string)", strings.TrimSpace(c))
	}
	return "Record(" + strings.Join(parts, ", ") + ")", nil
}
