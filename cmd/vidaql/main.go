// Command vidaql runs queries over raw data files from the shell — the
// "analysis begins with ad hoc querying and not by building a database"
// workflow of the paper (§2).
//
// Sources are registered with -csv/-json/-array/-xls flags of the form
// name=path[:schema] where schema is the source description grammar (CSV
// without a schema infers string columns from the header). The query is
// the final argument, or use -i for a simple interactive loop.
//
//	vidaql -csv 'Emps=emps.csv:Record(Att(id,int), Att(name,string))' \
//	       'for { e <- Emps, e.id > 1 } yield count e'
//
//	vidaql -json Regions=regions.json -sql 'SELECT COUNT(r.id) FROM Regions r'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"vida"
)

type sourceFlag struct {
	kind    string
	entries []string
}

func (s *sourceFlag) String() string { return strings.Join(s.entries, ",") }
func (s *sourceFlag) Set(v string) error {
	s.entries = append(s.entries, v)
	return nil
}

func main() {
	var csvs, jsons, arrays, xlss sourceFlag
	flag.Var(&csvs, "csv", "CSV source: name=path[:schema] (repeatable)")
	flag.Var(&jsons, "json", "JSON source: name=path (repeatable)")
	flag.Var(&arrays, "array", "binary array source: name=path:schema (repeatable)")
	flag.Var(&xlss, "xls", "spreadsheet source: name=path:schema (repeatable)")
	sql := flag.Bool("sql", false, "treat the query as SQL")
	explain := flag.Bool("explain", false, "print the optimized plan instead of running")
	interactive := flag.Bool("i", false, "interactive loop")
	static := flag.Bool("static", false, "use the static (channel) executor")
	flag.Parse()

	var opts []vida.Option
	if *static {
		opts = append(opts, vida.WithStaticExecutor())
	}
	eng := vida.New(opts...)
	registerAll(eng, csvs.entries, "csv")
	registerAll(eng, jsons.entries, "json")
	registerAll(eng, arrays.entries, "array")
	registerAll(eng, xlss.entries, "xls")

	if *interactive {
		repl(eng, *sql)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "vidaql: exactly one query argument expected (or -i)")
		os.Exit(2)
	}
	query := flag.Arg(0)
	if err := runOne(eng, query, *sql, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "vidaql:", err)
		os.Exit(1)
	}
}

func runOne(eng *vida.Engine, query string, sql, explain bool) error {
	if sql {
		text, err := eng.TranslateSQL(query)
		if err != nil {
			return err
		}
		query = text
	}
	if explain {
		plan, err := eng.Explain(query)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	res, err := eng.Query(query)
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

func printResult(res *vida.Result) {
	rows := res.Rows()
	if len(rows) == 1 && rows[0].Kind() != "record" {
		fmt.Println(rows[0])
		return
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Printf("(%d rows)\n", len(rows))
}

func repl(eng *vida.Engine, sql bool) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("vidaql — \\catalog lists sources, \\stats shows engine counters, \\q quits")
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "\\q":
			return
		case line == "\\catalog":
			fmt.Print(eng.Catalog())
		case line == "\\stats":
			st := eng.Stats()
			fmt.Printf("queries=%d cache-served=%d raw-touch=%d cache-bytes=%d aux-bytes=%d\n",
				st.Queries, st.QueriesFromCache, st.QueriesTouchedRaw, st.Cache.BytesUsed, st.AuxiliaryBytes)
		case strings.HasPrefix(line, "\\explain "):
			if err := runOne(eng, strings.TrimPrefix(line, "\\explain "), sql, true); err != nil {
				fmt.Println("error:", err)
			}
		default:
			if err := runOne(eng, line, sql, false); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("> ")
	}
}

func registerAll(eng *vida.Engine, entries []string, kind string) {
	for _, e := range entries {
		name, rest, ok := strings.Cut(e, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "vidaql: bad -%s %q (want name=path[:schema])\n", kind, e)
			os.Exit(2)
		}
		path, schema, _ := strings.Cut(rest, ":")
		var err error
		switch kind {
		case "csv":
			if schema == "" {
				schema, err = inferCSVSchema(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "vidaql: %s: %v\n", name, err)
					os.Exit(2)
				}
			}
			err = eng.RegisterCSV(name, path, schema, nil)
		case "json":
			err = eng.RegisterJSON(name, path, schema)
		case "array":
			err = eng.RegisterArray(name, path, schema)
		case "xls":
			err = eng.RegisterXLS(name, path, schema)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vidaql: register %s: %v\n", name, err)
			os.Exit(2)
		}
	}
}

// inferCSVSchema reads the header line and declares every column string —
// the minimal description that lets exploration start; users refine types
// in the schema argument when they need arithmetic.
func inferCSVSchema(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return "", fmt.Errorf("empty file")
	}
	cols := strings.Split(strings.TrimSpace(sc.Text()), ",")
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("Att(%s, string)", strings.TrimSpace(c))
	}
	return "Record(" + strings.Join(parts, ", ") + ")", nil
}
