// Command vidaserve runs the ViDa engine as a concurrent HTTP query
// service: raw CSV/JSON/array/spreadsheet files are registered at
// startup and queried over POST /query (monoid comprehensions) and
// POST /sql, with admission control, per-query timeouts, shared morsel
// scheduling across queries, and epoch-keyed result caching.
//
// Usage:
//
//	vidaserve -demo                          # serve a generated demo dataset
//	vidaserve -csv 'Patients=patients.csv#Record(Att(id, int), Att(age, int))' \
//	          -json 'Regions=regions.json' -addr :8080
//
// Endpoints: POST /query, POST /sql, POST /stream (NDJSON),
// POST /explain (analyze=true executes and returns the span tree),
// GET /catalog, GET /stats, GET /metrics (Prometheus),
// GET /explain?q=..., GET /debug/queries (profile ring), GET /healthz.
// With -debug-addr, net/http/pprof is served on a separate listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vida"
	"vida/internal/sched"
	"vida/internal/serve"
	"vida/internal/workload"
)

// sourceFlag collects repeated -csv/-json/... registrations of the form
// Name=path[#schema] (the '#' separator keeps schemas, which contain
// commas, out of the shell's way).
type sourceFlag []string

func (f *sourceFlag) String() string { return strings.Join(*f, "; ") }

func (f *sourceFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func splitSpec(spec string) (name, path, schema string, err error) {
	eq := strings.Index(spec, "=")
	if eq <= 0 {
		return "", "", "", fmt.Errorf("source spec %q: want Name=path[#schema]", spec)
	}
	name = spec[:eq]
	rest := spec[eq+1:]
	if hash := strings.Index(rest, "#"); hash >= 0 {
		return name, rest[:hash], rest[hash+1:], nil
	}
	return name, rest, "", nil
}

// fatal logs at error level and exits (slog has no Fatal).
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		workers     = flag.Int("workers", 0, "morsel scheduler workers (0 = GOMAXPROCS)")
		maxInFlight = flag.Int("max-inflight", 0, "admission limit on concurrent queries (0 = 4x GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "admission queue depth (0 = 4x max-inflight, negative = fail fast)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-query timeout (negative disables)")
		resultCache = flag.Int("result-cache", 256, "query-result LRU entries (negative disables)")
		resultBytes = flag.Int64("result-cache-bytes", 64<<20, "query-result LRU memory budget in bytes (negative disables)")
		cacheBudget = flag.Int64("cache-budget", 0, "data cache budget in bytes (0 = unlimited)")
		cacheHot    = flag.Int64("cache-hot-bytes", 0, "hot (decoded vector) cache tier budget in bytes; past it entries are held encoded in memory (0 = never encode)")
		cacheDir    = flag.String("cache-dir", "", "persist encoded cache blocks and positional maps here; a restarted server rehydrates its cache from this directory (empty disables)")
		memBudget   = flag.Int64("mem-budget", 0, "global query-memory budget in bytes (0 = unbudgeted)")
		queryMem    = flag.Int64("query-mem-budget", 0, "per-query memory budget in bytes (0 = unbudgeted)")
		slowQuery   = flag.Duration("slow-query", 500*time.Millisecond, "log queries slower than this (negative disables)")
		profileRing = flag.Int("profile-ring", 128, "completed query profiles retained for /debug/queries (negative disables)")
		demo        = flag.Bool("demo", false, "generate and serve the paper's demo datasets (Patients, Genetics, BrainRegions)")
		demoRows    = flag.Int("demo-rows", 5000, "demo dataset row count")
		csvSrcs     sourceFlag
		jsonSrcs    sourceFlag
	)
	flag.Var(&csvSrcs, "csv", "register a CSV source: Name=path#schema (repeatable)")
	flag.Var(&jsonSrcs, "json", "register a JSON source: Name=path[#schema] (repeatable)")
	flag.Parse()

	switch *logFormat {
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	case "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	default:
		fatal("unknown -log-format", "format", *logFormat)
	}

	pool := sched.NewPool(*workers)
	defer pool.Close()
	eng := vida.New(
		vida.WithScheduler(pool),
		vida.WithCacheBudget(*cacheBudget),
		vida.WithCacheHotBytes(*cacheHot),
		vida.WithCacheDir(*cacheDir),
		vida.WithMemoryBudget(*memBudget),
		vida.WithQueryMemoryBudget(*queryMem),
	)

	if *demo {
		dir, err := os.MkdirTemp("", "vidaserve-demo-")
		if err != nil {
			fatal("creating demo dir", "err", err)
		}
		defer os.RemoveAll(dir)
		sc := workload.Scale{
			PatientsRows:   *demoRows,
			PatientsCols:   20,
			GeneticsRows:   *demoRows,
			GeneticsCols:   24,
			RegionsObjects: *demoRows / 5,
		}
		paths, err := workload.GenerateAll(dir, sc, 42)
		if err != nil {
			fatal("generating demo data", "err", err)
		}
		check := func(err error) {
			if err != nil {
				fatal("registering demo source", "err", err)
			}
		}
		check(eng.RegisterCSV("Patients", paths.Patients, workload.PatientsSchema(sc), nil))
		check(eng.RegisterCSV("Genetics", paths.Genetics, workload.GeneticsSchema(sc), nil))
		check(eng.RegisterJSON("BrainRegions", paths.Regions, ""))
		slog.Info("demo data generated", "dir", dir,
			"patients_rows", *demoRows, "genetics_rows", *demoRows, "regions_objects", *demoRows/5)
	}
	for _, spec := range csvSrcs {
		name, path, schema, err := splitSpec(spec)
		if err != nil {
			fatal("bad -csv spec", "spec", spec, "err", err)
		}
		if schema == "" {
			fatal("CSV sources need a #schema", "spec", spec)
		}
		if err := eng.RegisterCSV(name, path, schema, nil); err != nil {
			fatal("registering CSV source", "source", name, "err", err)
		}
	}
	for _, spec := range jsonSrcs {
		name, path, schema, err := splitSpec(spec)
		if err != nil {
			fatal("bad -json spec", "spec", spec, "err", err)
		}
		if err := eng.RegisterJSON(name, path, schema); err != nil {
			fatal("registering JSON source", "source", name, "err", err)
		}
	}
	if len(eng.Sources()) == 0 {
		fatal("no sources registered: pass -demo or -csv/-json specs")
	}

	svc := serve.NewService(eng, pool, serve.Config{
		MaxInFlight:        *maxInFlight,
		MaxQueue:           *maxQueue,
		DefaultTimeout:     *timeout,
		ResultCacheEntries: *resultCache,
		ResultCacheBytes:   *resultBytes,
		ProfileEntries:     *profileRing,
		SlowQueryThreshold: *slowQuery,
	})
	srv := serve.NewServer(svc)

	// The pprof listener stays separate from the query port so profiling
	// endpoints are never exposed where queries are.
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			slog.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				slog.Error("pprof listener failed", "err", err)
			}
		}()
	}

	// Serve until SIGINT/SIGTERM, then drain gracefully.
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	slog.Info("vidaserve listening", "addr", *addr, "sources", strings.Join(eng.Sources(), ", "))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fatal("server failed", "err", err)
		}
	case sig := <-sigc:
		slog.Info("draining on signal", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			slog.Warn("shutdown incomplete", "err", err)
		}
	}
}
