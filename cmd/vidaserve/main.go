// Command vidaserve runs the ViDa engine as a concurrent HTTP query
// service: raw CSV/JSON/array/spreadsheet files are registered at
// startup and queried over POST /query (monoid comprehensions) and
// POST /sql, with admission control, per-query timeouts, shared morsel
// scheduling across queries, and epoch-keyed result caching.
//
// Usage:
//
//	vidaserve -demo                          # serve a generated demo dataset
//	vidaserve -csv 'Patients=patients.csv#Record(Att(id, int), Att(age, int))' \
//	          -json 'Regions=regions.json' -addr :8080
//
// Endpoints: POST /query, POST /sql, POST /stream (NDJSON), GET /catalog,
// GET /stats, GET /metrics (Prometheus), GET /explain?q=..., GET /healthz.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vida"
	"vida/internal/sched"
	"vida/internal/serve"
	"vida/internal/workload"
)

// sourceFlag collects repeated -csv/-json/... registrations of the form
// Name=path[#schema] (the '#' separator keeps schemas, which contain
// commas, out of the shell's way).
type sourceFlag []string

func (f *sourceFlag) String() string { return strings.Join(*f, "; ") }

func (f *sourceFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func splitSpec(spec string) (name, path, schema string, err error) {
	eq := strings.Index(spec, "=")
	if eq <= 0 {
		return "", "", "", fmt.Errorf("source spec %q: want Name=path[#schema]", spec)
	}
	name = spec[:eq]
	rest := spec[eq+1:]
	if hash := strings.Index(rest, "#"); hash >= 0 {
		return name, rest[:hash], rest[hash+1:], nil
	}
	return name, rest, "", nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "morsel scheduler workers (0 = GOMAXPROCS)")
		maxInFlight = flag.Int("max-inflight", 0, "admission limit on concurrent queries (0 = 4x GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "admission queue depth (0 = 4x max-inflight, negative = fail fast)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-query timeout (negative disables)")
		resultCache = flag.Int("result-cache", 256, "query-result LRU entries (negative disables)")
		resultBytes = flag.Int64("result-cache-bytes", 64<<20, "query-result LRU memory budget in bytes (negative disables)")
		cacheBudget = flag.Int64("cache-budget", 0, "data cache budget in bytes (0 = unlimited)")
		memBudget   = flag.Int64("mem-budget", 0, "global query-memory budget in bytes (0 = unbudgeted)")
		queryMem    = flag.Int64("query-mem-budget", 0, "per-query memory budget in bytes (0 = unbudgeted)")
		demo        = flag.Bool("demo", false, "generate and serve the paper's demo datasets (Patients, Genetics, BrainRegions)")
		demoRows    = flag.Int("demo-rows", 5000, "demo dataset row count")
		csvSrcs     sourceFlag
		jsonSrcs    sourceFlag
	)
	flag.Var(&csvSrcs, "csv", "register a CSV source: Name=path#schema (repeatable)")
	flag.Var(&jsonSrcs, "json", "register a JSON source: Name=path[#schema] (repeatable)")
	flag.Parse()

	pool := sched.NewPool(*workers)
	defer pool.Close()
	eng := vida.New(
		vida.WithScheduler(pool),
		vida.WithCacheBudget(*cacheBudget),
		vida.WithMemoryBudget(*memBudget),
		vida.WithQueryMemoryBudget(*queryMem),
	)

	if *demo {
		dir, err := os.MkdirTemp("", "vidaserve-demo-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		sc := workload.Scale{
			PatientsRows:   *demoRows,
			PatientsCols:   20,
			GeneticsRows:   *demoRows,
			GeneticsCols:   24,
			RegionsObjects: *demoRows / 5,
		}
		paths, err := workload.GenerateAll(dir, sc, 42)
		if err != nil {
			log.Fatalf("generating demo data: %v", err)
		}
		check := func(err error) {
			if err != nil {
				log.Fatalf("registering demo source: %v", err)
			}
		}
		check(eng.RegisterCSV("Patients", paths.Patients, workload.PatientsSchema(sc), nil))
		check(eng.RegisterCSV("Genetics", paths.Genetics, workload.GeneticsSchema(sc), nil))
		check(eng.RegisterJSON("BrainRegions", paths.Regions, ""))
		log.Printf("demo data in %s (Patients/Genetics: %d rows, BrainRegions: %d objects)",
			dir, *demoRows, *demoRows/5)
	}
	for _, spec := range csvSrcs {
		name, path, schema, err := splitSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		if schema == "" {
			log.Fatalf("-csv %s: CSV sources need a #schema", spec)
		}
		if err := eng.RegisterCSV(name, path, schema, nil); err != nil {
			log.Fatalf("registering %s: %v", name, err)
		}
	}
	for _, spec := range jsonSrcs {
		name, path, schema, err := splitSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.RegisterJSON(name, path, schema); err != nil {
			log.Fatalf("registering %s: %v", name, err)
		}
	}
	if len(eng.Sources()) == 0 {
		log.Fatal("no sources registered: pass -demo or -csv/-json specs")
	}

	svc := serve.NewService(eng, pool, serve.Config{
		MaxInFlight:        *maxInFlight,
		MaxQueue:           *maxQueue,
		DefaultTimeout:     *timeout,
		ResultCacheEntries: *resultCache,
		ResultCacheBytes:   *resultBytes,
	})
	srv := serve.NewServer(svc)

	// Serve until SIGINT/SIGTERM, then drain gracefully.
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	log.Printf("vidaserve listening on %s (sources: %s)", *addr, strings.Join(eng.Sources(), ", "))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			log.Fatal(err)
		}
	case sig := <-sigc:
		log.Printf("received %s, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}
