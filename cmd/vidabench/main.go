// Command vidabench regenerates the paper's tables and figures (see
// DESIGN.md's experiment index). Each experiment prints the same rows or
// series the paper reports, plus the shape assertions EXPERIMENTS.md
// records.
//
// Usage:
//
//	vidabench -exp fig5 -scale 0.02 -queries 150 [-dir /tmp/vida]
//	vidabench -exp all  -scale 0.01
//
// Experiments: table2, fig5, fig4, cachehits, coldwarm, mongospace,
// jitvsstatic, posmap, vpart, flatten, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vida/internal/experiments"
	"vida/internal/workload"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table2|fig5|fig4|cachehits|coldwarm|mongospace|jitvsstatic|posmap|vpart|flatten|all)")
		scale   = flag.Float64("scale", 0.01, "scale factor relative to the paper's datasets")
		queries = flag.Int("queries", 150, "workload query count (paper: 150)")
		seed    = flag.Int64("seed", 42, "generator seed")
		dir     = flag.String("dir", "", "scratch directory (default: temp)")
		repeats = flag.Int("repeats", 20, "repetitions for micro experiments")
	)
	flag.Parse()

	workDir := *dir
	if workDir == "" {
		d, err := os.MkdirTemp("", "vidabench")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(d)
		workDir = d
	}
	sc := workload.Factor(*scale)
	fmt.Printf("# vidabench — scale %.3f  (%d patients × %d cols, %d genetics × %d cols, %d regions), %d queries, seed %d\n\n",
		*scale, sc.PatientsRows, sc.PatientsCols, sc.GeneticsRows, sc.GeneticsCols, sc.RegionsObjects, *queries, *seed)

	run := func(name string, fn func(string) error) {
		if *exp != "all" && *exp != name {
			return
		}
		sub := filepath.Join(workDir, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			fatal(err)
		}
		if err := fn(sub); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println()
	}

	run("table2", func(d string) error {
		rows, err := experiments.RunTable2(d, sc, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== Table 2: workload characteristics ==")
		fmt.Printf("%-14s %10s %12s %12s %6s\n", "Relation", "Tuples", "Attributes", "Size", "Type")
		for _, r := range rows {
			attrs := fmt.Sprintf("%d", r.Attributes)
			if r.Attributes < 0 {
				attrs = "objects"
			}
			fmt.Printf("%-14s %10d %12s %12s %6s\n", r.Relation, r.Tuples, attrs, fmtBytes(r.SizeBytes), r.Type)
		}
		return nil
	})

	run("fig5", func(d string) error {
		res, err := experiments.RunFig5(d, sc, *queries, *seed)
		if err != nil {
			return err
		}
		if err := experiments.VerifyAnswersAgree(res); err != nil {
			return err
		}
		fmt.Println("== Figure 5: cumulative preparation + query time ==")
		fmt.Printf("%-18s %10s %10s %10s %10s\n", "System", "Flatten", "Load", "q1-q"+itoa(*queries), "Total")
		for _, r := range res.Rows {
			fmt.Printf("%-18s %9.3fs %9.3fs %9.3fs %9.3fs\n", r.System, r.FlattenSec, r.LoadSec, r.QuerySec, r.TotalSec)
		}
		fmt.Printf("\nViDa speedup over worst baseline: %.1fx (paper: up to 4.2x)\n", res.Speedup())
		fmt.Printf("ViDa cache-hit rate: %.0f%% (paper: ~80%%)\n", res.CacheHitRate()*100)
		fmt.Println("all five systems returned identical answers ✓")
		return nil
	})

	run("fig4", func(d string) error {
		rows, err := experiments.RunFig4(d, sc, *repeats, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 4: layouts for a tuple carrying a JSON object ==")
		fmt.Printf("%-10s %12s %12s %12s\n", "Layout", "Build", "Queries", "Resident")
		for _, r := range rows {
			fmt.Printf("%-10s %11.4fs %11.4fs %12s\n", r.Layout, r.BuildSec, r.QuerySec, fmtBytes(r.ResidentBytes))
		}
		return nil
	})

	run("cachehits", func(d string) error {
		res, err := experiments.RunCacheHits(d, sc, *queries, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== E4: cache-hit rate and latency vs loaded column store ==")
		fmt.Printf("queries: %d  cache-hits: %d (%.0f%%)\n", res.Queries, res.CacheHits, res.HitRate*100)
		fmt.Printf("mean cache-hit query: %.4fs   mean raw-touch query: %.4fs\n", res.MeanHitSec, res.MeanMissSec)
		fmt.Printf("mean loaded col-store query: %.4fs   hit/col-store factor: %.2fx\n", res.MeanColStoreSec, res.HitOverColFactor)
		return nil
	})

	run("coldwarm", func(d string) error {
		res, err := experiments.RunColdWarm(d, sc, *queries, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== E8: cold (raw-touch) vs warm (cache) time split ==")
		fmt.Printf("raw-touch queries: %d of %d, consuming %.0f%% of cumulative time\n",
			res.RawQueries, res.Queries, res.RawShareOfTotal*100)
		fmt.Printf("first raw-touch query: %.4fs   median warm query: %.5fs\n", res.FirstTouchSec, res.MedianWarmSec)
		fmt.Printf("slowest query: #%d at %.4fs\n", res.SlowestQueryID, res.SlowestQuerySec)
		return nil
	})

	run("mongospace", func(d string) error {
		res, err := experiments.RunMongoSpace(d, sc, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== E5: document-store import size amplification ==")
		fmt.Printf("raw JSON: %s   imported: %s   amplification: %.2fx (paper: ~2x)\n",
			fmtBytes(res.RawJSONBytes), fmtBytes(res.ImportedBytes), res.Amplification)
		fmt.Printf("import time: %.3fs for %d documents\n", res.ImportSec, res.ImportedDocs)
		return nil
	})

	run("jitvsstatic", func(d string) error {
		rows, err := experiments.RunJITvsStatic(d, sc, *repeats, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== E6: generated (JIT) vs pre-cooked (static channel) operators ==")
		fmt.Printf("%-18s %10s %10s %8s\n", "Plan", "JIT", "Static", "Ratio")
		for _, r := range rows {
			fmt.Printf("%-18s %9.4fs %9.4fs %7.1fx\n", r.Plan, r.JITSec, r.StaticSec, r.Ratio)
		}
		return nil
	})

	run("posmap", func(d string) error {
		rows, err := experiments.RunPosmap(d, sc, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== E7: positional map — access cost vs attribute position ==")
		fmt.Printf("%-12s %12s %12s %9s\n", "Column idx", "Cold scan", "Posmap scan", "Speedup")
		for _, r := range rows {
			fmt.Printf("%-12d %11.4fs %11.4fs %8.1fx\n", r.ColumnIndex, r.ColdSec, r.WarmSec, r.Speedup)
		}
		return nil
	})

	run("vpart", func(d string) error {
		res, err := experiments.RunVPart(d, sc, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== E9: vertical partitioning of the Genetics relation ==")
		fmt.Printf("columns: %d → partitions: %d (load %.3fs)\n", res.Columns, res.Partitions, res.LoadSec)
		fmt.Printf("scan projecting same-partition cols: %.4fs; cross-partition cols: %.4fs (stitch overhead %.2fx)\n",
			res.SinglePartSec, res.CrossPartSec, res.StitchOverhead)
		return nil
	})

	run("cachebudget", func(d string) error {
		budgets := []int64{-1, 64 << 10, 512 << 10, 4 << 20, 0}
		rows, err := experiments.RunCacheBudget(d, sc, *queries, *seed, budgets)
		if err != nil {
			return err
		}
		fmt.Println("== E11: cache byte budget vs hit rate and total time ==")
		fmt.Printf("%-12s %8s %10s %10s %12s\n", "Budget", "Hits", "Total", "Evictions", "Resident")
		for _, r := range rows {
			label := fmtBytes(r.BudgetBytes)
			if r.BudgetBytes < 0 {
				label = "disabled"
			} else if r.BudgetBytes == 0 {
				label = "unlimited"
			}
			fmt.Printf("%-12s %7.0f%% %9.3fs %10d %12s\n",
				label, r.HitRate*100, r.TotalSec, r.Evictions, fmtBytes(r.CacheBytes))
		}
		return nil
	})

	run("flatten", func(d string) error {
		res, err := experiments.RunFlatten(d, sc, *seed)
		if err != nil {
			return err
		}
		fmt.Println("== E10: JSON flattening cost and redundancy ==")
		fmt.Printf("full flatten (arrays exploded): %.3fs, %.1f rows/object, %.2fx bytes\n",
			res.FullSec, res.FullRedundancy, res.FullBytesRatio)
		fmt.Printf("scalar flatten (arrays skipped): %.3fs, %.1f rows/object\n",
			res.ScalarSec, res.ScalarRedundancy)
		return nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vidabench:", err)
	os.Exit(1)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
