// Command vidagen emits the synthetic Human Brain Project datasets
// (Patients CSV, Genetics CSV, BrainRegions JSON) at a chosen scale
// factor, for use with vidaql or external tools.
//
// Usage:
//
//	vidagen -out ./data -scale 0.05 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"

	"vida/internal/workload"
)

func main() {
	var (
		out   = flag.String("out", "data", "output directory")
		scale = flag.Float64("scale", 0.01, "scale factor relative to the paper's datasets")
		seed  = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	sc := workload.Factor(*scale)
	paths, err := workload.GenerateAll(*out, sc, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated (scale %.3f):\n", *scale)
	fmt.Printf("  %-16s %8d rows × %5d cols  %10d bytes\n", paths.Patients, sc.PatientsRows, sc.PatientsCols, workload.FileSize(paths.Patients))
	fmt.Printf("  %-16s %8d rows × %5d cols  %10d bytes\n", paths.Genetics, sc.GeneticsRows, sc.GeneticsCols, workload.FileSize(paths.Genetics))
	fmt.Printf("  %-16s %8d objects           %10d bytes\n", paths.Regions, sc.RegionsObjects, workload.FileSize(paths.Regions))
	fmt.Println("\nschemas (source description grammar):")
	fmt.Println("  Patients:", truncate(workload.PatientsSchema(sc), 100))
	fmt.Println("  Genetics:", truncate(workload.GeneticsSchema(sc), 100))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vidagen:", err)
	os.Exit(1)
}
