package vida_test

// Fault-isolation regression tests at the public API: panic containment
// at the execution and stream-producer barriers, double-Close safety on
// Rows, and memory governance degrading gracefully (harvests shed before
// queries die).

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"vida"
	"vida/internal/core"
	"vida/internal/faultinject"
	"vida/internal/workload"
)

func robustEngine(t testing.TB, opts ...vida.Option) *vida.Engine {
	t.Helper()
	dir := t.TempDir()
	sc := workload.Scale{
		PatientsRows:   900,
		PatientsCols:   12,
		GeneticsRows:   700,
		GeneticsCols:   10,
		RegionsObjects: 150,
	}
	paths, err := workload.GenerateAll(dir, sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng := vida.New(opts...)
	if err := eng.RegisterCSV("Patients", paths.Patients, workload.PatientsSchema(sc), nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterCSV("Genetics", paths.Genetics, workload.GeneticsSchema(sc), nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterJSON("BrainRegions", paths.Regions, ""); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestPanicContainment: a panic inside a scan becomes a query-scoped
// error; the engine answers the next query as if nothing happened.
func TestPanicContainment(t *testing.T) {
	defer faultinject.Reset()
	eng := robustEngine(t)

	faultinject.Set(faultinject.CSVRead, func() error { panic("injected scan panic") })
	_, err := eng.Query("for { p <- Patients } yield count p")
	if err == nil {
		t.Fatal("query with panicking scan returned nil error")
	}
	if !strings.Contains(err.Error(), "panic recovered") {
		t.Fatalf("err = %v, want a recovered-panic error", err)
	}

	faultinject.Reset()
	res, err := eng.Query("for { p <- Patients } yield count p")
	if err != nil {
		t.Fatalf("engine dead after contained panic: %v", err)
	}
	if res.Len() == 0 {
		t.Fatal("empty result after contained panic")
	}
}

// TestStreamProducerPanicContainment: the same containment on the
// cursor path — the producer goroutine's panic surfaces as Rows.Err,
// never as a crash.
func TestStreamProducerPanicContainment(t *testing.T) {
	defer faultinject.Reset()
	eng := robustEngine(t)

	faultinject.Set(faultinject.CSVRead, func() error { panic("injected producer panic") })
	rows, err := eng.QueryRows("for { p <- Patients } yield bag p.id")
	if err != nil {
		// Planning may fail before the producer starts; that is fine as
		// long as it is the recovered panic, not a crash.
		if !strings.Contains(err.Error(), "panic recovered") {
			t.Fatalf("open err = %v, want recovered panic", err)
		}
		return
	}
	for rows.Next() {
	}
	err = rows.Err()
	rows.Close()
	if err == nil || !strings.Contains(err.Error(), "panic recovered") {
		t.Fatalf("rows.Err() = %v, want recovered panic", err)
	}
}

// TestRowsDoubleCloseRace: Close is idempotent and safe to race with
// another Close and with a reader (run under -race in CI).
func TestRowsDoubleCloseRace(t *testing.T) {
	eng := robustEngine(t)
	for i := 0; i < 10; i++ {
		rows, err := eng.QueryRows("for { p <- Patients } yield bag p.id")
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("no rows: %v", rows.Err())
		}
		var wg sync.WaitGroup
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rows.Close()
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rows.Next() {
			}
		}()
		wg.Wait()
		if err := rows.Close(); err != nil {
			t.Fatalf("Close after Close: %v", err)
		}
	}
}

// TestGlobalBudgetShedsHarvestNotQueries: with a global budget too small
// for the columnar caches, cold scans still answer — the engine sheds
// the harvest (counted in stats) instead of killing the query.
func TestGlobalBudgetShedsHarvestNotQueries(t *testing.T) {
	eng := robustEngine(t, vida.WithMemoryBudget(16<<10))

	res, err := eng.Query("for { p <- Patients } yield count p")
	if err != nil {
		t.Fatalf("cold scan under tiny global budget: %v", err)
	}
	if res.Len() == 0 {
		t.Fatal("empty result")
	}
	mem := eng.Stats().Memory
	if mem.HarvestSkips == 0 {
		t.Fatalf("harvest not shed under a 16KiB global budget: %+v", mem)
	}
	if mem.QueryKills != 0 {
		t.Fatalf("query killed instead of harvest shed: %+v", mem)
	}

	// Rerunning still answers (raw every time, never cached) and matches.
	res2, err := eng.Query("for { p <- Patients } yield count p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value().String() != res2.Value().String() {
		t.Fatalf("unharvested rescan drifted: %v vs %v", res.Value(), res2.Value())
	}
}

// TestQueryBudgetKillIsTyped: the per-query budget aborts with the
// ErrMemoryBudget sentinel and counts the kill.
func TestQueryBudgetKillIsTyped(t *testing.T) {
	eng := robustEngine(t, vida.WithQueryMemoryBudget(2<<10))
	_, err := eng.Query("for { p <- Patients, g <- Genetics, p.id = g.id } yield count p")
	if !errors.Is(err, core.ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	var mbe *core.MemoryBudgetError
	if !errors.As(err, &mbe) || mbe.Scope != "query" {
		t.Fatalf("err = %#v, want query-scoped MemoryBudgetError", err)
	}
	if kills := eng.Stats().Memory.QueryKills; kills == 0 {
		t.Fatalf("QueryKills = %d, want > 0", kills)
	}
}

// TestJoinBuildStallFaultPoint: the jit.join_build_stall point fires on
// every retained build batch, so an injected error aborts the join as a
// query-scoped failure and an injected panic is contained by the same
// barriers as any other executor fault; either way the engine answers
// the identical join once the point is disarmed.
func TestJoinBuildStallFaultPoint(t *testing.T) {
	defer faultinject.Reset()
	eng := robustEngine(t)
	const join = "for { p <- Patients, g <- Genetics, p.id = g.id } yield count p"

	faultinject.Set(faultinject.JoinBuildStall, func() error {
		return errors.New("injected join build stall")
	})
	_, err := eng.Query(join)
	if err == nil || !strings.Contains(err.Error(), "injected join build stall") {
		t.Fatalf("err = %v, want the injected build-stall error", err)
	}
	if faultinject.Hits(faultinject.JoinBuildStall) == 0 {
		t.Fatal("join build ran without hitting the stall point")
	}

	faultinject.Set(faultinject.JoinBuildStall, func() error { panic("injected join build panic") })
	_, err = eng.Query(join)
	if err == nil || !strings.Contains(err.Error(), "panic recovered") {
		t.Fatalf("err = %v, want a recovered-panic error", err)
	}

	// Disarmed, the same join completes and the aborted builds left no
	// poisoned state behind.
	faultinject.Reset()
	res, err := eng.Query(join)
	if err != nil {
		t.Fatalf("join dead after contained build faults: %v", err)
	}
	if res.Value().Int() == 0 {
		t.Fatal("join returned zero matches after contained build faults")
	}
}
